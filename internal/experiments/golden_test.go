package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"arcc/internal/exhibit"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// goldenFiles maps every registered exhibit to its golden file. The
// deterministic exhibits (static tables, closed-form Fig 6.1, functional
// ablation-scrub, closed-form due) render identically under any profile;
// the Monte Carlo and simulator exhibits are pinned under the quick
// profile at seed 1 — bit-identical at any parallelism by the engine's
// contract, which TestGoldenExhibits enforces by rendering each exhibit
// at parallelism 1, 4, and GOMAXPROCS.
var goldenFiles = map[string]string{
	"t7.1":             "table71",
	"t7.2":             "table72",
	"t7.3":             "table73",
	"t7.4":             "table74",
	"f3.1":             "fig31_quick_seed1",
	"f6.1":             "fig61",
	"f7.1":             "fig71_quick_seed1",
	"f7.2":             "fig72_quick_seed1",
	"f7.3":             "fig73_quick_seed1",
	"f7.4":             "fig74_quick_seed1",
	"f7.5":             "fig75_quick_seed1",
	"f7.6":             "fig76_quick_seed1",
	"due":              "due",
	"ablation-scrub":   "ablation_scrub",
	"ablation-llc":     "ablation_llc_quick_seed1",
	"ablation-pairing": "ablation_pairing_quick_seed1",
}

// renderText runs an exhibit through the registry and renders its report
// with the text renderer.
func renderText(t *testing.T, name string, parallel int) []byte {
	t.Helper()
	e, ok := exhibit.Lookup(name)
	if !ok {
		t.Fatalf("exhibit %q not registered", name)
	}
	cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1), exhibit.WithParallel(parallel))
	r, err := e.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := (exhibit.TextRenderer{}).Render(&buf, r); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenExhibits pins the text rendering of every registered exhibit:
// a refactor that drifts any of the paper's numbers, or even their
// formatting, fails here. Each exhibit renders at parallelism 1, 4, and
// GOMAXPROCS and every rendering must match the golden byte for byte —
// the engine's bit-identical-at-any-parallelism contract, enforced at the
// exhibit surface. Run `go test ./internal/experiments -run Golden
// -update` to bless an intentional change.
func TestGoldenExhibits(t *testing.T) {
	if len(goldenFiles) != len(exhibit.All()) {
		t.Fatalf("golden map covers %d exhibits, registry has %d — add the new exhibit's golden",
			len(goldenFiles), len(exhibit.All()))
	}
	parallelisms := []int{1, 4, runtime.NumCPU()}
	if testing.Short() {
		parallelisms = []int{runtime.NumCPU()}
	}
	for _, e := range exhibit.All() {
		golden := goldenFiles[e.Name]
		t.Run(golden, func(t *testing.T) {
			path := filepath.Join("testdata", golden+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, renderText(t, e.Name, 0), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			for _, par := range parallelisms {
				got := renderText(t, e.Name, par)
				if !bytes.Equal(got, want) {
					t.Errorf("output drifted from %s at parallelism %d:\n--- got ---\n%s\n--- want ---\n%s",
						path, par, got, want)
				}
			}
		})
	}
}

// TestJSONReportRoundTrip pins the JSON renderer's schema: the "data"
// field of a rendered report unmarshals back into the exhibit's typed
// rows and compares equal to the in-memory result. Exercised across the
// exhibit kinds (static table, Monte Carlo series, simulator sweep,
// closed form) so every result type's JSON surface stays stable.
func TestJSONReportRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		data func() any // fresh zero holder for the typed rows
	}{
		{"t7.1", func() any { return &[]Table71Row{} }},
		{"t7.4", func() any { return &[]Table74Row{} }},
		{"f3.1", func() any { return &Fig31Result{} }},
		{"f6.1", func() any { return &Fig61Result{} }},
		{"due", func() any { return &DUEResult{} }},
		{"ablation-scrub", func() any { return &[]ScrubAblationRow{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, ok := exhibit.Lookup(tc.name)
			if !ok {
				t.Fatalf("exhibit %q not registered", tc.name)
			}
			cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1))
			report, err := e.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := (exhibit.JSONRenderer{}).Render(&buf, report); err != nil {
				t.Fatal(err)
			}
			var wire struct {
				Exhibit string          `json:"exhibit"`
				Title   string          `json:"title"`
				Meta    exhibit.Meta    `json:"meta"`
				Data    json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(buf.Bytes(), &wire); err != nil {
				t.Fatalf("report is not valid JSON: %v", err)
			}
			if wire.Exhibit != tc.name || wire.Title != report.Title {
				t.Fatalf("envelope drifted: %q / %q", wire.Exhibit, wire.Title)
			}
			if wire.Meta != report.Meta {
				t.Fatalf("meta drifted: %+v vs %+v", wire.Meta, report.Meta)
			}
			holder := tc.data()
			if err := json.Unmarshal(wire.Data, holder); err != nil {
				t.Fatalf("data does not unmarshal into the typed rows: %v", err)
			}
			got := reflect.ValueOf(holder).Elem().Interface()
			if !reflect.DeepEqual(got, report.Data) {
				t.Errorf("typed rows did not round-trip:\n got %+v\nwant %+v", got, report.Data)
			}
		})
	}
}

// TestCSVRendering smoke-checks the tabular projection of every exhibit
// that carries one: headers and row widths must agree, which the CSV
// renderer enforces.
func TestCSVRendering(t *testing.T) {
	for _, name := range []string{"t7.1", "f3.1", "f6.1", "due", "ablation-scrub"} {
		e, _ := exhibit.Lookup(name)
		report, err := e.Run(context.Background(), quick())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := (exhibit.CSVRenderer{}).Render(&buf, report); err != nil {
			t.Errorf("%s: csv render failed: %v", name, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s: empty csv", name)
		}
	}
}
