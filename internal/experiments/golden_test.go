package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden files under testdata/")

// The golden tests pin the rendered output of the deterministic exhibits:
// the static tables, the closed-form Fig 6.1, and the seeded Monte Carlo
// Fig 3.1 (quick profile, seed 1 — bit-identical at any parallelism by the
// engine's contract). A refactor that drifts any of the paper's numbers,
// or even their formatting, fails here; run `go test ./internal/experiments
// -run Golden -update` to bless an intentional change.
func TestGoldenExhibits(t *testing.T) {
	o := Options{Quick: true, Seed: 1}
	cases := []struct {
		name  string
		print func(*bytes.Buffer)
	}{
		{"table71", func(b *bytes.Buffer) { FprintTable71(b) }},
		{"table72", func(b *bytes.Buffer) { FprintTable72(b) }},
		{"table73", func(b *bytes.Buffer) { FprintTable73(b) }},
		{"table74", func(b *bytes.Buffer) { FprintTable74(b) }},
		{"fig61", func(b *bytes.Buffer) { Fig61(o).Fprint(b) }},
		{"fig31_quick_seed1", func(b *bytes.Buffer) { Fig31(o).Fprint(b) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			tc.print(&buf)
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.Bytes(), want)
			}
		})
	}
}
