package experiments

import (
	"io"

	"arcc/internal/faultmodel"
	"arcc/internal/reliability"
)

// DUEResult supports the §6.1 discussion: DUE rates of the schemes and the
// effect of applying ARCC.
type DUEResult struct {
	Factors []float64
	// Per factor, expected DUE events per machine lifetime (7 years).
	SCCDCD  []float64
	ARCC    []float64 // SCCDCD + ARCC
	Sparing []float64 // double chip sparing
}

// DUEAnalysis computes the §6.1 DUE comparison at fault-rate factors
// 1x/2x/4x.
func DUEAnalysis() DUEResult {
	res := DUEResult{Factors: []float64{1, 2, 4}}
	for _, f := range res.Factors {
		p := reliability.DefaultParams()
		p.Rates = faultmodel.FieldStudyRates().Scale(f)
		res.SCCDCD = append(res.SCCDCD, reliability.SCCDCDExpectedDUEs(p))
		res.ARCC = append(res.ARCC, reliability.ARCCExpectedDUEs(p))
		res.Sparing = append(res.Sparing, reliability.SparingExpectedDUEs(p))
	}
	return res
}

// Fprint renders the DUE comparison.
func (r DUEResult) Fprint(w io.Writer) {
	fprintf(w, "Section 6.1: DUE rates (expected events per 7-year machine lifetime)\n")
	fprintf(w, "%-8s %-14s %-14s %-16s\n", "Factor", "SCCDCD", "SCCDCD+ARCC", "chip sparing")
	for i, f := range r.Factors {
		fprintf(w, "%-8.0f %-14.3e %-14.3e %-16.3e\n", f, r.SCCDCD[i], r.ARCC[i], r.Sparing[i])
	}
	fprintf(w, "(ARCC never raises the DUE rate; sparing nearly eliminates DUEs — the basis of the 17x claim)\n")
}
