package experiments

import (
	"context"
	"io"

	"arcc/internal/exhibit"
	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/reliability"
)

// Fig31Result holds the Fig 3.1 series: average fraction of 4 KB pages
// affected by faults, per year of lifespan, for each fault-rate factor.
type Fig31Result struct {
	Years   int
	Factors []float64
	// Fraction[fi][y] is the faulty-page fraction at rate factor
	// Factors[fi], end of year y+1.
	Fraction [][]float64
}

// Fig31 reproduces Figure 3.1 with a Monte Carlo over memory channels of
// two 36-device ranks (the baseline shape the chapter uses). The channels
// of each rate factor run on the sharded engine with a factor-specific
// seed stream derived from cfg's seed; a cancelled ctx aborts within one
// shard and returns mc.ErrCanceled.
func Fig31(ctx context.Context, cfg exhibit.Config) (Fig31Result, error) {
	res := Fig31Result{Years: 7, Factors: []float64{1, 2, 4}}
	shape := faultmodel.ARCCChannelShape()
	for fi, f := range res.Factors {
		rates := faultmodel.FieldStudyRates().Scale(f)
		seed := mc.DeriveSeed(cfg.SeedOrDefault(), tagFig31+uint64(fi))
		series, err := reliability.FaultyPageFractionCtx(ctx, seed, cfg.MCOptions(), rates, shape, 2, 36, res.Years, channels(cfg))
		if err != nil {
			return Fig31Result{}, err
		}
		res.Fraction = append(res.Fraction, series)
	}
	return res, nil
}

// Fprint renders the Fig 3.1 series.
func (r Fig31Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 3.1: Faulty Memory vs. Time (avg fraction of 4KB pages affected)\n")
	fprintf(w, "%-6s", "Year")
	for _, f := range r.Factors {
		fprintf(w, " %8.0fx", f)
	}
	fprintf(w, "\n")
	for y := 0; y < r.Years; y++ {
		fprintf(w, "%-6d", y+1)
		for fi := range r.Factors {
			fprintf(w, " %8.4f%%", r.Fraction[fi][y]*100)
		}
		fprintf(w, "\n")
	}
}

// Fig61Result holds the Fig 6.1 comparison: SDCs per 1000 machine-years for
// commercial SCCDCD's simultaneous double error detection versus ARCC's
// reduced (scrub-race-limited) double error detection.
type Fig61Result struct {
	Lifespans []float64 // years
	Factors   []float64
	// SCCDCD[fi][li] and ARCC[fi][li] are SDCs per 1000 machine-years.
	SCCDCD [][]float64
	ARCC   [][]float64
}

// Fig61 reproduces Figure 6.1 using the closed-form reliability models
// (validated against Monte Carlo in the reliability package's tests). It
// is pure computation — no Monte Carlo — so it takes no context.
func Fig61(cfg exhibit.Config) Fig61Result {
	res := Fig61Result{Lifespans: []float64{5, 6, 7}, Factors: []float64{1, 2, 4}}
	for _, f := range res.Factors {
		var rowS, rowA []float64
		for _, life := range res.Lifespans {
			p := reliability.DefaultParams()
			p.Rates = faultmodel.FieldStudyRates().Scale(f)
			p.LifeYears = life
			rowS = append(rowS, reliability.SDCsPer1000MachineYears(reliability.SCCDCDExpectedSDCs(p), life))
			rowA = append(rowA, reliability.SDCsPer1000MachineYears(reliability.ARCCDEDExpectedSDCs(p), life))
		}
		res.SCCDCD = append(res.SCCDCD, rowS)
		res.ARCC = append(res.ARCC, rowA)
	}
	return res
}

// Fprint renders the Fig 6.1 rows.
func (r Fig61Result) Fprint(w io.Writer) {
	fprintf(w, "Figure 6.1: SDCs in 1000 machine-years (DED = commercial SCCDCD, ARCC DED = reduced detection)\n")
	fprintf(w, "%-8s %-10s %-14s %-14s %-8s\n", "Factor", "Lifespan", "SCCDCD DED", "ARCC DED", "ratio")
	for fi, f := range r.Factors {
		for li, life := range r.Lifespans {
			ratio := 0.0
			if r.SCCDCD[fi][li] > 0 {
				ratio = r.ARCC[fi][li] / r.SCCDCD[fi][li]
			}
			fprintf(w, "%-8.0f %-10.0f %-14.3e %-14.3e %-8.1f\n", f, life, r.SCCDCD[fi][li], r.ARCC[fi][li], ratio)
		}
	}
	fprintf(w, "(both rates are insignificant in absolute terms; the ARCC increase is the paper's point)\n")
}
