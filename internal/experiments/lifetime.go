package experiments

import (
	"context"
	"io"

	"arcc/internal/exhibit"
	"arcc/internal/faultmodel"
	"arcc/internal/lotecc"
	"arcc/internal/mc"
	"arcc/internal/reliability"
)

// LifetimeResult holds a Fig 7.4/7.5/7.6-style series: average overhead as
// a function of operational years, per fault-rate factor, with the
// measured (locality-aware) and worst-case estimates where applicable.
type LifetimeResult struct {
	Title   string
	Metric  string
	Years   int
	Factors []float64
	// Measured[fi][y]: overhead with the per-fault-type overheads taken
	// from the Fig 7.2/7.3 simulations. Nil when not applicable (Fig 7.6
	// reports the worst case only).
	Measured [][]float64
	// WorstCase[fi][y]: zero-locality analytic estimate.
	WorstCase [][]float64
}

// Fig74 reproduces Figure 7.4 (average power overhead of error correction
// vs time). Per-fault-type measured overheads come from the Fig 7.2 sweep.
func Fig74(ctx context.Context, cfg exhibit.Config) (LifetimeResult, error) {
	f72, err := Fig72(ctx, cfg)
	if err != nil {
		return LifetimeResult{}, err
	}
	measured := overheadsFromSweep(f72, false)
	return lifetimeSweep(ctx, cfg, "Figure 7.4: Power Overhead of Error Correction", "power increase",
		measured, reliability.WorstCaseOverheads(faultmodel.ARCCChannelShape(), 2), 1.0)
}

// Fig75 reproduces Figure 7.5 (average performance overhead vs time).
func Fig75(ctx context.Context, cfg exhibit.Config) (LifetimeResult, error) {
	f73, err := Fig73(ctx, cfg)
	if err != nil {
		return LifetimeResult{}, err
	}
	measured := overheadsFromSweep(f73, true)
	return lifetimeSweep(ctx, cfg, "Figure 7.5: Performance Overhead of Error Correction", "performance decrease",
		measured, worstCasePerf(), 0.5)
}

// Fig76 reproduces Figure 7.6: the worst-case power/performance overhead of
// ARCC applied to LOT-ECC (9-device relaxed, 18-device upgraded), where an
// upgraded access costs 4x a relaxed one.
func Fig76(ctx context.Context, cfg exhibit.Config) (LifetimeResult, error) {
	factor := lotecc.WorstCaseUpgradedPowerFactor()
	ov := reliability.WorstCaseOverheads(faultmodel.ARCCChannelShape(), factor)
	res := LifetimeResult{
		Title:   "Figure 7.6: Power/Performance Overhead of ARCC applied to LOT-ECC (worst case)",
		Metric:  "overhead",
		Years:   7,
		Factors: []float64{1, 2, 4},
	}
	for fi, f := range res.Factors {
		rates := faultmodel.FieldStudyRates().Scale(f)
		seed := mc.DeriveSeed(cfg.SeedOrDefault(), tagFig76+uint64(fi))
		series, err := reliability.LifetimeOverheadCtx(ctx, seed, cfg.MCOptions(), rates, 2, 9, res.Years, channels(cfg), ov, factor-1)
		if err != nil {
			return LifetimeResult{}, err
		}
		res.WorstCase = append(res.WorstCase, series)
	}
	return res, nil
}

// overheadsFromSweep converts a Fig 7.2/7.3 sweep into per-fault-type
// overheads: the average deviation from 1.0 across mixes (negated for the
// IPC sweep, where overhead = performance decrease).
func overheadsFromSweep(sweep FaultSweepResult, isPerf bool) reliability.OverheadByType {
	out := reliability.OverheadByType{}
	for s, sc := range sweep.Scenarios {
		ov := sweep.Avg[s] - 1
		if isPerf {
			ov = 1 - sweep.Avg[s]
		}
		if ov < 0 {
			// Some mixes *gain* performance from upgraded-line prefetch;
			// the lifetime overhead accounting floors per-fault overhead
			// at zero (a fault never helps on average).
			ov = 0
		}
		out[sc.Type] = ov
	}
	return out
}

// worstCasePerf is the Fig 7.5 worst-case input: half bandwidth on the
// upgraded fraction.
func worstCasePerf() reliability.OverheadByType {
	shape := faultmodel.ARCCChannelShape()
	out := reliability.OverheadByType{}
	for _, t := range faultmodel.Types() {
		if t.IsTransientScale() {
			continue
		}
		out[t] = 0.5 * shape.UpgradedFraction(t)
	}
	return out
}

func lifetimeSweep(ctx context.Context, cfg exhibit.Config, title, metric string, measured, worst reliability.OverheadByType, cap float64) (LifetimeResult, error) {
	res := LifetimeResult{Title: title, Metric: metric, Years: 7, Factors: []float64{1, 2, 4}}
	for fi, f := range res.Factors {
		rates := faultmodel.FieldStudyRates().Scale(f)
		meas, err := reliability.LifetimeOverheadCtx(ctx, mc.DeriveSeed(cfg.SeedOrDefault(), tagLifetimeMeas+uint64(fi)),
			cfg.MCOptions(), rates, 2, 18, res.Years, channels(cfg), measured, cap)
		if err != nil {
			return LifetimeResult{}, err
		}
		res.Measured = append(res.Measured, meas)
		wc, err := reliability.LifetimeOverheadCtx(ctx, mc.DeriveSeed(cfg.SeedOrDefault(), tagLifetimeWorst+uint64(fi)),
			cfg.MCOptions(), rates, 2, 18, res.Years, channels(cfg), worst, cap)
		if err != nil {
			return LifetimeResult{}, err
		}
		res.WorstCase = append(res.WorstCase, wc)
	}
	return res, nil
}

// Fprint renders a lifetime series.
func (r LifetimeResult) Fprint(w io.Writer) {
	fprintf(w, "%s (%s vs fault-free, averaged from year 1 to year X)\n", r.Title, r.Metric)
	fprintf(w, "%-6s", "Year")
	for _, f := range r.Factors {
		if r.Measured != nil {
			fprintf(w, " %9.0fx-meas", f)
		}
		fprintf(w, " %9.0fx-worst", f)
	}
	fprintf(w, "\n")
	for y := 0; y < r.Years; y++ {
		fprintf(w, "%-6d", y+1)
		for fi := range r.Factors {
			if r.Measured != nil {
				fprintf(w, " %14.3f%%", r.Measured[fi][y]*100)
			}
			fprintf(w, " %15.3f%%", r.WorstCase[fi][y]*100)
		}
		fprintf(w, "\n")
	}
}
