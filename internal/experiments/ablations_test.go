package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationScrub(t *testing.T) {
	rows := AblationScrub()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.FourStep {
			t.Errorf("4-step scrubber missed: %s", r.Scenario)
		}
		if strings.Contains(r.Scenario, "hidden") && r.Conventional {
			t.Errorf("conventional scrubber should miss the hidden case: %s", r.Scenario)
		}
		if !strings.Contains(r.Scenario, "hidden") && !r.Conventional {
			t.Errorf("conventional scrubber should catch the visible case: %s", r.Scenario)
		}
	}
	var buf bytes.Buffer
	FprintAblationScrub(&buf)
	if !strings.Contains(buf.String(), "4-step") {
		t.Fatal("printer broken")
	}
}

func TestAblationLLCPolicy(t *testing.T) {
	r := runQuick(t, AblationLLCPolicy)
	if len(r.Policies) != 2 || len(r.Mixes) != 3 {
		t.Fatalf("shape %v/%v", r.Policies, r.Mixes)
	}
	for mi := range r.Mixes {
		if r.IPCRatio[0][mi] != 1.0 {
			t.Fatalf("shared-recency baseline ratio != 1: %v", r.IPCRatio[0][mi])
		}
		// Independent LRU must not be dramatically better; it is usually
		// equal or slightly worse (paired lines lose protection).
		if r.IPCRatio[1][mi] > 1.05 || r.IPCRatio[1][mi] < 0.80 {
			t.Fatalf("independent-lru ratio %v outside [0.80, 1.05]", r.IPCRatio[1][mi])
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "shared-recency") {
		t.Fatal("printer broken")
	}
}

func TestAblationPairing(t *testing.T) {
	r := runQuick(t, AblationPairing)
	for i, ratio := range r.FIFORatio {
		// FIFO synchronisation can only cost performance, and only a little.
		if ratio > 1.02 || ratio < 0.85 {
			t.Fatalf("%s: FIFO/promote ratio %v outside [0.85, 1.02]", r.Mixes[i], ratio)
		}
	}
	var buf bytes.Buffer
	r.Fprint(&buf)
	if !strings.Contains(buf.String(), "pairing") {
		t.Fatal("printer broken")
	}
}
