package experiments

import (
	"context"
	"fmt"
	"io"

	"arcc/internal/exhibit"
)

// This file is the exhibit surface of the experiments package: it
// registers every table, figure, and ablation of the paper's evaluation
// in the process-wide exhibit registry and defines the flat tabular
// projections the CSV renderer emits. The registration order is the order
// the paper presents the exhibits in; `-exhibit all` runs them in this
// order.

// register wires one exhibit into the registry: compute returns the typed
// rows, their tabular projection, and the legacy text printer, and the
// report inherits the exhibit's name and title — stated once, so a
// listing and its reports cannot disagree.
func register(name, title, describe string,
	compute func(ctx context.Context, cfg exhibit.Config) (data any, tables []exhibit.Table, text func(io.Writer), err error)) {
	exhibit.Register(exhibit.Exhibit{
		Name: name, Title: title, Describe: describe,
		Run: func(ctx context.Context, cfg exhibit.Config) (*exhibit.Report, error) {
			data, tables, text, err := compute(ctx, cfg)
			if err != nil {
				return nil, err
			}
			return &exhibit.Report{
				Exhibit: name,
				Title:   title,
				Meta:    exhibit.MetaFor(cfg),
				Data:    data,
				Tables:  tables,
				Text:    text,
			}, nil
		},
	})
}

func init() {
	register("t7.1", "Table 7.1: Memory Configurations",
		"evaluated memory configurations (baseline chipkill vs ARCC)",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			rows := Table71()
			t := exhibit.Table{Name: "configurations",
				Columns: []string{"name", "tech", "io", "channels", "ranks_per_channel", "rank_size"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, exhibit.Row(r.Name, r.Tech, r.IO,
					exhibit.Itoa(r.Channels), exhibit.Itoa(r.Ranks), exhibit.Itoa(r.RankSize)))
			}
			return rows, []exhibit.Table{t}, FprintTable71, nil
		})
	register("t7.2", "Table 7.2: Processor Microarchitecture",
		"simulated core parameters",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			rows := Table72()
			t := exhibit.Table{Name: "parameters", Columns: []string{"param", "value"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, exhibit.Row(r.Param, r.Value))
			}
			return rows, []exhibit.Table{t}, FprintTable72, nil
		})
	register("t7.3", "Table 7.3: Workloads",
		"the 12 multiprogrammed workload mixes",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			mixes := Table73()
			t := exhibit.Table{Name: "mixes",
				Columns: []string{"mix", "core0", "core1", "core2", "core3"}}
			for _, m := range mixes {
				t.Rows = append(t.Rows, exhibit.Row(m.Name, m.Benchmarks[0].Name,
					m.Benchmarks[1].Name, m.Benchmarks[2].Name, m.Benchmarks[3].Name))
			}
			return mixes, []exhibit.Table{t}, FprintTable73, nil
		})
	register("t7.4", "Table 7.4: Fault Modeling Details",
		"fraction of pages upgraded per fault type",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			rows := Table74()
			t := exhibit.Table{Name: "fault_modeling",
				Columns: []string{"fault_type", "fraction", "note"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, exhibit.Row(r.FaultType, exhibit.Ftoa(r.Fraction), r.Note))
			}
			return rows, []exhibit.Table{t}, FprintTable74, nil
		})
	register("f3.1", "Figure 3.1: Faulty Memory vs. Time",
		"avg fraction of 4KB pages affected by faults, per year and rate factor (Monte Carlo)",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig31(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f6.1", "Figure 6.1: SDCs in 1000 Machine-Years",
		"closed-form SDC rates: commercial SCCDCD DED vs ARCC's reduced DED",
		func(_ context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r := Fig61(cfg)
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.1", "Figure 7.1: Power and Performance Improvements",
		"fault-free ARCC vs commercial chipkill, per mix (full-system simulation)",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig71(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.2", "Figure 7.2: Power Consumption with Fault",
		"power under lane/device/subbank/column faults, normalized to fault-free",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig72(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.3", "Figure 7.3: Performance with Fault",
		"IPC under lane/device/subbank/column faults, normalized to fault-free",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig73(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.4", "Figure 7.4: Power Overhead of Error Correction",
		"lifetime average power overhead vs time, measured and worst-case",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig74(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.5", "Figure 7.5: Performance Overhead of Error Correction",
		"lifetime average performance overhead vs time, measured and worst-case",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig75(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("f7.6", "Figure 7.6: Overhead of ARCC applied to LOT-ECC",
		"worst-case lifetime overhead of ARCC on LOT-ECC (4x upgraded access cost)",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := Fig76(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("due", "Section 6.1: DUE Rates",
		"expected DUE events per machine lifetime: SCCDCD, SCCDCD+ARCC, chip sparing",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r := DUEAnalysis()
			return r, r.Tables(), r.Fprint, nil
		})
	register("ablation-scrub", "Ablation: Scrubber Fault-Detection Coverage",
		"4-step vs conventional scrubber across fault situations (§4.2.2)",
		func(_ context.Context, _ exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			rows := AblationScrub()
			t := exhibit.Table{Name: "coverage",
				Columns: []string{"scenario", "four_step", "conventional"}}
			for _, r := range rows {
				t.Rows = append(t.Rows, exhibit.Row(r.Scenario,
					fmt.Sprintf("%v", r.FourStep), fmt.Sprintf("%v", r.Conventional)))
			}
			return rows, []exhibit.Table{t}, FprintAblationScrub, nil
		})
	register("ablation-llc", "Ablation: LLC Replacement for Upgraded Pairs",
		"shared-recency vs independent LRU under full upgrade pressure (§4.2.3)",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := AblationLLCPolicy(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
	register("ablation-pairing", "Ablation: Sub-Line Pairing Design",
		"strict-FIFO vs pointer-promotion pairing under full upgrade pressure (§4.2.4)",
		func(ctx context.Context, cfg exhibit.Config) (any, []exhibit.Table, func(io.Writer), error) {
			r, err := AblationPairing(ctx, cfg)
			if err != nil {
				return nil, nil, nil, err
			}
			return r, r.Tables(), r.Fprint, nil
		})
}

// newReport assembles a report from an exhibit's typed result, its flat
// tables, and its legacy text printer; the scenario layer (whose exhibits
// are built at run time, not registered in init) shares it.
func newReport(name, title string, cfg exhibit.Config, data any, tables []exhibit.Table, text func(io.Writer)) *exhibit.Report {
	return &exhibit.Report{
		Exhibit: name,
		Title:   title,
		Meta:    exhibit.MetaFor(cfg),
		Data:    data,
		Tables:  tables,
		Text:    text,
	}
}

// Tables projects the Fig 3.1 series for the CSV renderer.
func (r Fig31Result) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "faulty_fraction", Columns: []string{"year"}}
	for _, f := range r.Factors {
		t.Columns = append(t.Columns, fmt.Sprintf("%gx", f))
	}
	for y := 0; y < r.Years; y++ {
		row := exhibit.Row(exhibit.Itoa(y + 1))
		for fi := range r.Factors {
			row = append(row, exhibit.Ftoa(r.Fraction[fi][y]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []exhibit.Table{t}
}

// Tables projects the Fig 6.1 comparison for the CSV renderer.
func (r Fig61Result) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "sdc_rates",
		Columns: []string{"factor", "lifespan_years", "sccdcd_ded", "arcc_ded"}}
	for fi, f := range r.Factors {
		for li, life := range r.Lifespans {
			t.Rows = append(t.Rows, exhibit.Row(exhibit.Ftoa(f), exhibit.Ftoa(life),
				exhibit.Ftoa(r.SCCDCD[fi][li]), exhibit.Ftoa(r.ARCC[fi][li])))
		}
	}
	return []exhibit.Table{t}
}

// Tables projects the Fig 7.1 comparison for the CSV renderer.
func (r Fig71Result) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "improvements",
		Columns: []string{"mix", "power_reduction", "ipc_gain"}}
	for i, m := range r.Mixes {
		t.Rows = append(t.Rows, exhibit.Row(m, exhibit.Ftoa(r.PowerReduction[i]), exhibit.Ftoa(r.IPCGain[i])))
	}
	t.Rows = append(t.Rows, exhibit.Row("AVG", exhibit.Ftoa(r.AvgPowerReduction), exhibit.Ftoa(r.AvgIPCGain)))
	return []exhibit.Table{t}
}

// Tables projects a Fig 7.2/7.3 fault sweep for the CSV renderer.
func (r FaultSweepResult) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "normalized_" + r.Metric, Columns: []string{"mix"}}
	for _, sc := range r.Scenarios {
		t.Columns = append(t.Columns, sc.Name)
	}
	for m, mix := range r.Mixes {
		row := exhibit.Row(mix)
		for s := range r.Scenarios {
			row = append(row, exhibit.Ftoa(r.Normalized[s][m]))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := exhibit.Row("AVG")
	worst := exhibit.Row("worst est.")
	for s := range r.Scenarios {
		avg = append(avg, exhibit.Ftoa(r.Avg[s]))
		worst = append(worst, exhibit.Ftoa(r.WorstCase[s]))
	}
	t.Rows = append(t.Rows, avg, worst)
	return []exhibit.Table{t}
}

// Tables projects a lifetime series for the CSV renderer: one table per
// estimate kind.
func (r LifetimeResult) Tables() []exhibit.Table {
	series := func(name string, data [][]float64) exhibit.Table {
		t := exhibit.Table{Name: name, Columns: []string{"year"}}
		for _, f := range r.Factors {
			t.Columns = append(t.Columns, fmt.Sprintf("%gx", f))
		}
		for y := 0; y < r.Years; y++ {
			row := exhibit.Row(exhibit.Itoa(y + 1))
			for fi := range r.Factors {
				row = append(row, exhibit.Ftoa(data[fi][y]))
			}
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	var out []exhibit.Table
	if r.Measured != nil {
		out = append(out, series("measured", r.Measured))
	}
	out = append(out, series("worst_case", r.WorstCase))
	return out
}

// Tables projects the DUE comparison for the CSV renderer.
func (r DUEResult) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "due_rates",
		Columns: []string{"factor", "sccdcd", "sccdcd_arcc", "chip_sparing"}}
	for i, f := range r.Factors {
		t.Rows = append(t.Rows, exhibit.Row(exhibit.Ftoa(f),
			exhibit.Ftoa(r.SCCDCD[i]), exhibit.Ftoa(r.ARCC[i]), exhibit.Ftoa(r.Sparing[i])))
	}
	return []exhibit.Table{t}
}

// Tables projects the LLC policy ablation for the CSV renderer.
func (r PolicyAblationResult) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "ipc_ratio", Columns: append([]string{"policy"}, r.Mixes...)}
	for pi, p := range r.Policies {
		row := exhibit.Row(p)
		for mi := range r.Mixes {
			row = append(row, exhibit.Ftoa(r.IPCRatio[pi][mi]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []exhibit.Table{t}
}

// Tables projects the pairing ablation for the CSV renderer.
func (r PairingAblationResult) Tables() []exhibit.Table {
	t := exhibit.Table{Name: "fifo_ratio", Columns: []string{"mix", "fifo_over_promote"}}
	for i, m := range r.Mixes {
		t.Rows = append(t.Rows, exhibit.Row(m, exhibit.Ftoa(r.FIFORatio[i])))
	}
	return []exhibit.Table{t}
}
