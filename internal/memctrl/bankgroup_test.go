package memctrl

import "testing"

// ddr4Config builds a single-channel DDR4-style controller with 4 bank
// groups and an exaggerated tCCD_L so the group penalty is unmistakable.
func bankGroupConfig(groups int, t Timing) Config {
	return Config{
		Channels: 1, RanksPerChannel: 1, BanksPerRank: 16, BankGroups: groups,
		Timing: t, DevicesPerAccess: 9, BurstBeats: 8,
	}
}

func TestBankGroupColumnSpacing(t *testing.T) {
	tim := Timing{TRCD: 4, CL: 4, TRC: 18, Burst: 2, TCCDS: 2, TCCDL: 10}

	// Same group back to back: banks 0 and 4 share group 0 (group = bank %
	// 4), so the second access's data must wait tCCD_L after the first.
	c := New(bankGroupConfig(4, tim), nil)
	first := c.Access(0, 0, 0, false)
	_ = first
	sameGroup := c.Access(0, 0, 4, false)

	// Different groups: banks 0 and 1 are in groups 0 and 1; only the
	// short gap (here swallowed by burst spacing) applies.
	c2 := New(bankGroupConfig(4, tim), nil)
	c2.Access(0, 0, 0, false)
	diffGroup := c2.Access(0, 0, 1, false)

	if sameGroup <= diffGroup {
		t.Fatalf("same-group access completes at %d, different-group at %d; want same-group later (tCCD_L)", sameGroup, diffGroup)
	}
	// Quantitatively: data for access 1 is ready at TRCD+CL = 8; the first
	// column command started at 8, so same-group data waits until 8+10,
	// completing at 20; different-group waits only for the bus (8+2 -> 12).
	if diffGroup != 12 {
		t.Fatalf("different-group completion = %d, want 12", diffGroup)
	}
	if sameGroup != 20 {
		t.Fatalf("same-group completion = %d, want 20 (tCCD_L enforced)", sameGroup)
	}
}

// TestNoBankGroupsBooksAsBefore pins that DDR2-style configurations (no
// groups, no TCCDL) are byte-identical to the pre-bank-group model: the
// goldens of every existing exhibit depend on it.
func TestNoBankGroupsBooksAsBefore(t *testing.T) {
	cfg := Config{
		Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
		Timing: DDR2X8Timing(), DevicesPerAccess: 18, BurstBeats: 4,
	}
	c := New(cfg, nil)
	// A handful of hand-computed completions under the legacy model.
	if got := c.Access(0, 0, 0, false); got != 10 {
		t.Fatalf("first access completes at %d, want 10 (TRCD+CL+Burst)", got)
	}
	if got := c.Access(0, 0, 1, false); got != 12 {
		t.Fatalf("second access (other bank) completes at %d, want 12 (bus serialised)", got)
	}
	if got := c.Access(0, 1, 0, false); got != 10 {
		t.Fatalf("other-channel access completes at %d, want 10", got)
	}
}

func TestBankGroupReset(t *testing.T) {
	tim := Timing{TRCD: 4, CL: 4, TRC: 18, Burst: 2, TCCDS: 2, TCCDL: 10}
	c := New(bankGroupConfig(4, tim), nil)
	c.Access(0, 0, 0, false)
	after := c.Access(0, 0, 4, false)
	c.Reset()
	c.Access(0, 0, 0, false)
	again := c.Access(0, 0, 4, false)
	if after != again {
		t.Fatalf("post-Reset booking diverged: %d vs %d", after, again)
	}
}

func TestDDRGenerationTimings(t *testing.T) {
	for _, tc := range []struct {
		name string
		tim  Timing
	}{{"ddr4", DDR4Timing()}, {"ddr5", DDR5Timing()}} {
		if tc.tim.TCCDL <= tc.tim.TCCDS {
			t.Errorf("%s: TCCDL %d <= TCCDS %d", tc.name, tc.tim.TCCDL, tc.tim.TCCDS)
		}
		if tc.tim.TREFI <= 0 || tc.tim.TRFC <= 0 {
			t.Errorf("%s: refresh timing missing", tc.name)
		}
		// Timings must be usable in a controller.
		cfg := bankGroupConfig(4, tc.tim)
		c := New(cfg, nil)
		if got := c.Access(0, 0, 0, false); got <= 0 {
			t.Errorf("%s: access completed at %d", tc.name, got)
		}
	}
	if New(bankGroupConfig(1, DDR2X8Timing()), nil) == nil {
		t.Fatal("flat-bank config rejected")
	}
}

func TestBankGroupsMustDivideBanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted 16 banks in 3 groups")
		}
	}()
	New(bankGroupConfig(3, DDR4Timing()), nil)
}
