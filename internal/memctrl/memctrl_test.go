package memctrl

import (
	"testing"

	"arcc/internal/power"
)

func arccConfig() Config {
	return Config{
		Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
		Timing: DDR2X8Timing(), DevicesPerAccess: 18, BurstBeats: 4,
	}
}

func baselineConfig() Config {
	return Config{
		Channels: 2, RanksPerChannel: 1, BanksPerRank: 8,
		Timing: DDR2X4Timing(), DevicesPerAccess: 36, BurstBeats: 4,
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	bad := arccConfig()
	bad.Channels = 0
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(bad, nil)
}

func TestSingleAccessLatency(t *testing.T) {
	c := New(arccConfig(), nil)
	tm := DDR2X8Timing()
	complete := c.Access(0, 0, 0, false)
	want := int64(tm.TRCD + tm.CL + tm.Burst)
	if complete != want {
		t.Fatalf("idle access completes at %d, want %d", complete, want)
	}
}

func TestBankConflictSerializes(t *testing.T) {
	c := New(arccConfig(), nil)
	tm := DDR2X8Timing()
	first := c.Access(0, 0, 0, false)
	second := c.Access(0, 0, 0, false)
	// Same bank: the second activate waits for tRC.
	wantSecond := int64(tm.TRC + tm.TRCD + tm.CL + tm.Burst)
	if second != wantSecond {
		t.Fatalf("bank-conflicted access completes at %d, want %d (first %d)", second, wantSecond, first)
	}
}

func TestDifferentBanksOverlap(t *testing.T) {
	c := New(arccConfig(), nil)
	tm := DDR2X8Timing()
	first := c.Access(0, 0, 0, false)
	second := c.Access(0, 0, 1, false)
	// Different banks overlap; only the data bus serializes the bursts.
	if second != first+int64(tm.Burst) {
		t.Fatalf("bank-parallel access completes at %d, want %d", second, first+int64(tm.Burst))
	}
}

func TestChannelsAreIndependent(t *testing.T) {
	c := New(arccConfig(), nil)
	a := c.Access(0, 0, 0, false)
	b := c.Access(0, 1, 0, false)
	if a != b {
		t.Fatalf("independent channels should complete together: %d vs %d", a, b)
	}
}

func TestPairedAccessUsesBothChannels(t *testing.T) {
	c := New(arccConfig(), nil)
	done := c.AccessPaired(0, 3, false)
	// Both channels now busy at bank 3: a relaxed access to channel 0
	// bank 3 must wait for tRC.
	next := c.Access(0, 0, 3, false)
	if next <= done {
		t.Fatal("paired access did not occupy channel 0's bank")
	}
	next1 := c.Access(0, 1, 3, false)
	if next1 <= done {
		t.Fatal("paired access did not occupy channel 1's bank")
	}
}

func TestPairedPanicsOnSingleChannel(t *testing.T) {
	cfg := baselineConfig()
	cfg.Channels = 1
	c := New(cfg, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AccessPaired(0, 0, false)
}

func TestMoreRanksMoreThroughput(t *testing.T) {
	// Issue a dense stream round-robin over all banks. Both configs have
	// two 144-bit channels; ARCC's extra rank per channel (16 vs 8 banks)
	// lifts the bank-conflict limit: 8 banks recycle in 8*burst = 16
	// cycles < tRC = 18, so the baseline stalls ~2 cycles per round while
	// ARCC stays bus-limited. This is the paper's +5.9% IPC mechanism.
	run := func(cfg Config) int64 {
		c := New(cfg, nil)
		const n = 4000
		banks := cfg.RanksPerChannel * cfg.BanksPerRank
		for i := 0; i < n; i++ {
			ch := i % cfg.Channels
			c.Access(0, ch, (i/cfg.Channels)%banks, false)
		}
		return c.LastCompletion()
	}
	arcc := run(arccConfig())
	base := run(baselineConfig())
	if arcc >= base {
		t.Fatalf("ARCC config (%d cycles) not faster than baseline (%d cycles)", arcc, base)
	}
	gain := float64(base)/float64(arcc) - 1
	if gain < 0.03 || gain > 0.30 {
		t.Fatalf("throughput gain %.1f%%, want a modest single-digit-to-low-double-digit gain", gain*100)
	}
}

func TestUpgradedTrafficHalvesEffectiveBandwidth(t *testing.T) {
	// Worst case of §7.2: every access upgraded, no spatial locality. The
	// same number of useful 64 B lines needs twice the channel work.
	relaxedDone := func() int64 {
		c := New(arccConfig(), nil)
		for i := 0; i < 2000; i++ {
			c.Access(0, i%2, (i/2)%16, false)
		}
		return c.LastCompletion()
	}()
	upgradedDone := func() int64 {
		c := New(arccConfig(), nil)
		for i := 0; i < 2000; i++ {
			c.AccessPaired(0, i%16, false)
		}
		return c.LastCompletion()
	}()
	ratio := float64(upgradedDone) / float64(relaxedDone)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("upgraded stream took %.2fx the relaxed stream, want ~2x", ratio)
	}
}

func TestPowerAccounting(t *testing.T) {
	m := power.NewMeter(power.Micron512MbX8())
	c := New(arccConfig(), m)
	c.Access(0, 0, 0, false)
	c.Access(0, 0, 1, true)
	act, rd, wr := m.Counts()
	if act != 2 || rd != 1 || wr != 1 {
		t.Fatalf("power events %d/%d/%d, want 2/1/1", act, rd, wr)
	}
	reads, writes := c.Stats()
	if reads != 1 || writes != 1 {
		t.Fatalf("stats %d/%d", reads, writes)
	}
}

func TestPairedAccessChargesBothChannels(t *testing.T) {
	m := power.NewMeter(power.Micron512MbX8())
	c := New(arccConfig(), m)
	c.AccessPaired(0, 0, false)
	act, rd, _ := m.Counts()
	if act != 2 || rd != 2 {
		t.Fatalf("paired access charged %d activates / %d reads, want 2/2", act, rd)
	}
}

func TestUtilizations(t *testing.T) {
	c := New(arccConfig(), nil)
	done := c.Access(0, 0, 0, false)
	bus := c.BusUtilization(done)
	if bus <= 0 || bus > 1 {
		t.Fatalf("bus utilization %v", bus)
	}
	bank := c.BankUtilization(done)
	if bank <= 0 || bank > 1 {
		t.Fatalf("bank utilization %v", bank)
	}
	for name, f := range map[string]func(){
		"bus zero elapsed":  func() { c.BusUtilization(0) },
		"bank zero elapsed": func() { c.BankUtilization(0) },
		"bad channel":       func() { c.Access(0, 9, 0, false) },
		"bad bank":          func() { c.Access(0, 0, 99, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestPairingPoliciesDiverge(t *testing.T) {
	// Desynchronise the two channels with single-channel traffic, then
	// issue a paired access: under PairFIFO the idle channel must wait for
	// the busy one's bank before starting, so its bank stays busy longer
	// than under PairPromote.
	run := func(p Pairing) int64 {
		cfg := arccConfig()
		cfg.Pairing = p
		c := New(cfg, nil)
		c.Access(0, 0, 3, false)            // channel 0 bank 3 busy until tRC
		done := c.AccessPaired(0, 3, false) // paired access on bank 3
		return done
	}
	promote, fifo := run(PairPromote), run(PairFIFO)
	if fifo < promote {
		t.Fatalf("FIFO pairing (%d) finished before pointer promotion (%d); sync cannot help", fifo, promote)
	}
	// With an idle system both policies agree.
	idle := func(p Pairing) int64 {
		cfg := arccConfig()
		cfg.Pairing = p
		return New(cfg, nil).AccessPaired(0, 0, false)
	}
	if idle(PairPromote) != idle(PairFIFO) {
		t.Fatal("policies must agree on an idle system")
	}
}

func TestRefreshWindowDelaysAccesses(t *testing.T) {
	cfg := arccConfig()
	// DDR2-667: tREFI = 7.8 us / 3 ns = 2600 cycles, tRFC = 105 ns = 35.
	cfg.Timing.TREFI = 2600
	cfg.Timing.TRFC = 35
	c := New(cfg, nil)
	// An access issued at cycle 0 lands inside the refresh window and must
	// wait until the refresh completes.
	tm := cfg.Timing
	done := c.Access(0, 0, 0, false)
	want := int64(tm.TRFC + tm.TRCD + tm.CL + tm.Burst)
	if done != want {
		t.Fatalf("in-refresh access completes at %d, want %d", done, want)
	}
	// An access between refresh windows is undisturbed.
	c2 := New(cfg, nil)
	done2 := c2.Access(100, 0, 0, false)
	if done2 != 100+int64(tm.TRCD+tm.CL+tm.Burst) {
		t.Fatalf("out-of-refresh access delayed: %d", done2)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c := New(arccConfig(), nil)
	tm := arccConfig().Timing
	if done := c.Access(0, 0, 0, false); done != int64(tm.TRCD+tm.CL+tm.Burst) {
		t.Fatalf("zero-TREFI config should not model refresh (done=%d)", done)
	}
}

func TestOpenPageRowHitsAreFast(t *testing.T) {
	cfg := arccConfig()
	cfg.Timing.TRP = 4
	c := New(cfg, nil)
	tm := cfg.Timing
	first := c.AccessOpenPage(0, 0, 0, 5, false) // row miss (bank precharged)
	second := c.AccessOpenPage(first, 0, 0, 5, false)
	hitLatency := second - first
	if hitLatency != int64(tm.CL+tm.Burst) {
		t.Fatalf("row hit latency %d, want %d", hitLatency, tm.CL+tm.Burst)
	}
	third := c.AccessOpenPage(second, 0, 0, 9, false) // conflicting row
	missLatency := third - second
	if missLatency != int64(tm.TRP+tm.TRCD+tm.CL+tm.Burst) {
		t.Fatalf("row-conflict latency %d, want %d", missLatency, tm.TRP+tm.TRCD+tm.CL+tm.Burst)
	}
}

func TestOpenPageBeatsClosedPageOnRowLocality(t *testing.T) {
	// A stream with strong row locality: open page amortises activates.
	run := func(open bool) int64 {
		cfg := arccConfig()
		cfg.Timing.TRP = 4
		c := New(cfg, nil)
		var now int64
		for i := 0; i < 1000; i++ {
			row := int64(i / 50) // 50 accesses per row
			if open {
				now = c.AccessOpenPage(now, 0, 0, row, false)
			} else {
				now = c.Access(now, 0, 0, false)
			}
		}
		return c.LastCompletion()
	}
	openDone, closedDone := run(true), run(false)
	if openDone >= closedDone {
		t.Fatalf("open page (%d) not faster than closed page (%d) on a row-local stream", openDone, closedDone)
	}
}

func TestOpenPagePowerSkipsActivatesOnHits(t *testing.T) {
	m := power.NewMeter(power.Micron512MbX8())
	cfg := arccConfig()
	cfg.Timing.TRP = 4
	c := New(cfg, m)
	c.AccessOpenPage(0, 0, 0, 1, false)   // miss: activate
	c.AccessOpenPage(100, 0, 0, 1, false) // hit: no activate
	act, rd, _ := m.Counts()
	if act != 1 || rd != 2 {
		t.Fatalf("activates/reads = %d/%d, want 1/2", act, rd)
	}
}

func TestOpenPagePanicsOnNegativeRow(t *testing.T) {
	c := New(arccConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	c.AccessOpenPage(0, 0, 0, -1, false)
}
