// Package memctrl models memory-controller timing for the performance
// experiments: closed-page policy (every access is an activate + column
// access + precharge), per-bank occupancy, shared data-bus occupancy per
// channel, and the lockstep pairing of two channels for upgraded (128 B)
// and baseline commercial-chipkill accesses.
//
// Time is measured in DRAM clock cycles (DDR2-667: 333 MHz, 3 ns/cycle).
// The model books resources greedily in request order, which matches an
// FR-FCFS scheduler under a closed-page policy closely enough for the
// comparative experiments: what the figures need is (a) bank/rank-level
// parallelism — the ARCC configuration has 2 channels x 2 ranks versus the
// baseline's single lockstep rank, which is where its +5.9% IPC comes from
// — and (b) data-bus occupancy, which is where the worst-case bandwidth
// halving for upgraded pages comes from.
package memctrl

import (
	"fmt"

	"arcc/internal/power"
)

// Timing holds DDR2 command timings in DRAM clock cycles.
type Timing struct {
	TRCD  int // activate to column command
	CL    int // column command to first data
	TRC   int // activate to activate, same bank
	Burst int // data-bus cycles per 64 B line transfer
	// TRP is precharge time, used by the open-page policy.
	TRP int
	// TREFI/TRFC model auto-refresh: every TREFI cycles each rank is
	// unavailable for TRFC cycles. Zero TREFI disables refresh modeling.
	TREFI int
	TRFC  int
	// TCCDS/TCCDL are the DDR4/DDR5 column-to-column command gaps to a
	// different (S) or the same (L) bank group. Zero TCCDL disables
	// bank-group spacing — the DDR2 presets leave it off, so legacy
	// configurations book identically to before bank groups existed.
	TCCDS int
	TCCDL int
}

// DDR2X8Timing is the ARCC channel: 18 x8 devices form a 144-bit bus and
// move a 72 B line (data + check) in a 4-beat burst = 2 data-bus clocks.
func DDR2X8Timing() Timing { return Timing{TRCD: 4, CL: 4, TRC: 18, Burst: 2} }

// DDR2X4Timing is the baseline channel: a 36 x4-device rank also forms a
// 144-bit bus (two physical 72-bit channels in lockstep, §4.2.4), so a
// 64 B line is likewise a 4-beat burst = 2 data-bus clocks. The baseline
// differs from ARCC in rank count (1 vs 2 per channel) and devices touched
// per access (36 vs 18), not in bus width.
func DDR2X4Timing() Timing { return Timing{TRCD: 4, CL: 4, TRC: 18, Burst: 2} }

// DDR4Timing models a DDR4-2400 ECC channel in its own 1200 MHz command
// clocks (~0.83 ns): tRCD/CL ~13.3 ns, tRC ~45 ns, a BL8 burst moving a
// line in 4 bus clocks, 4-bank-group tCCD_S/tCCD_L spacing, and 7.8 us /
// 350 ns auto-refresh. Representative JEDEC speed-bin numbers — the
// figures compare configurations, they do not certify parts.
func DDR4Timing() Timing {
	return Timing{TRCD: 16, CL: 16, TRC: 54, Burst: 4, TRP: 16,
		TREFI: 9360, TRFC: 420, TCCDS: 4, TCCDL: 6}
}

// DDR5Timing models a DDR5-4800 ECC subchannel in its own 2400 MHz command
// clocks (~0.42 ns): tRCD/CL ~16 ns, tRC ~48 ns, a BL16 burst moving a
// line in 8 bus clocks on the 40-bit subchannel, 8-bank-group spacing, and
// fine-granularity refresh (3.9 us / ~295 ns).
func DDR5Timing() Timing {
	return Timing{TRCD: 39, CL: 40, TRC: 115, Burst: 8, TRP: 39,
		TREFI: 9360, TRFC: 708, TCCDS: 8, TCCDL: 12}
}

// Config shapes a controller.
type Config struct {
	Channels        int
	RanksPerChannel int
	BanksPerRank    int
	// BankGroups partitions each rank's banks into groups for tCCD_L/tCCD_S
	// column spacing (DDR4: 4, DDR5: 8). Zero or one means a flat DDR2-style
	// bank array with no group constraint.
	BankGroups int
	Timing     Timing
	// DevicesPerAccess is the device count charged to the power meter for
	// one single-channel access (18 for ARCC, 36 for the lockstep
	// baseline whose two physical channels fire together).
	DevicesPerAccess int
	// BurstBeats is the per-device burst length for power accounting.
	BurstBeats int
	// Pairing selects the upgraded-access pairing design (§4.2.4). The
	// zero value is the pointer-promotion design.
	Pairing Pairing
}

// Controller books command timing and records power events.
type Controller struct {
	cfg   Config
	meter *power.Meter

	bankFree [][]int64 // [channel][rank*banks] next-free cycle
	openRow  [][]int64 // [channel][rank*banks] open row (-1: precharged); open-page only
	busFree  []int64   // [channel]

	// Bank-group column spacing state (tCCD): per channel, the start cycle
	// and group of the last column command. Unused when the configuration
	// has no bank groups or the timing has no TCCDL.
	lastCol      []int64 // [channel]
	lastColGroup []int   // [channel], -1 before any column command

	reads, writes  int64
	busBusy        int64 // accumulated data-bus busy cycles (all channels)
	bankBusy       int64 // accumulated bank busy cycles
	lastCompletion int64
}

// New creates a controller. meter may be nil to skip power accounting.
func New(cfg Config, meter *power.Meter) *Controller {
	if cfg.Channels <= 0 || cfg.RanksPerChannel <= 0 || cfg.BanksPerRank <= 0 ||
		cfg.DevicesPerAccess <= 0 || cfg.BurstBeats <= 0 {
		panic(fmt.Sprintf("memctrl: invalid config %+v", cfg))
	}
	if cfg.Timing.TRCD <= 0 || cfg.Timing.CL <= 0 || cfg.Timing.TRC <= 0 || cfg.Timing.Burst <= 0 {
		panic(fmt.Sprintf("memctrl: invalid timing %+v", cfg.Timing))
	}
	if cfg.BankGroups > 1 && cfg.BanksPerRank%cfg.BankGroups != 0 {
		panic(fmt.Sprintf("memctrl: %d banks do not divide into %d groups", cfg.BanksPerRank, cfg.BankGroups))
	}
	banks := make([][]int64, cfg.Channels)
	rows := make([][]int64, cfg.Channels)
	for i := range banks {
		banks[i] = make([]int64, cfg.RanksPerChannel*cfg.BanksPerRank)
		rows[i] = make([]int64, cfg.RanksPerChannel*cfg.BanksPerRank)
		for j := range rows[i] {
			rows[i][j] = -1
		}
	}
	c := &Controller{cfg: cfg, meter: meter, bankFree: banks, openRow: rows, busFree: make([]int64, cfg.Channels)}
	c.lastCol = make([]int64, cfg.Channels)
	c.lastColGroup = make([]int, cfg.Channels)
	for i := range c.lastColGroup {
		c.lastColGroup[i] = -1
	}
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// Reset returns the controller to its post-New state — all banks and buses
// free, all rows precharged, counters zeroed — reusing the backing arrays.
// The attached power meter (if any) is NOT reset; callers that reuse a
// controller across runs reset the meter alongside (sim.Scratch does).
func (c *Controller) Reset() {
	for i := range c.bankFree {
		clear(c.bankFree[i])
		rows := c.openRow[i]
		for j := range rows {
			rows[j] = -1
		}
	}
	clear(c.busFree)
	clear(c.lastCol)
	for i := range c.lastColGroup {
		c.lastColGroup[i] = -1
	}
	c.reads, c.writes = 0, 0
	c.busBusy, c.bankBusy = 0, 0
	c.lastCompletion = 0
}

// TotalBanks returns channels * ranks * banks — the parallelism available.
func (c *Controller) TotalBanks() int {
	return c.cfg.Channels * c.cfg.RanksPerChannel * c.cfg.BanksPerRank
}

// Access books one 64 B access on (channel, globalBank) starting no earlier
// than now, and returns its completion cycle. globalBank indexes
// rank*BanksPerRank + bank within the channel.
func (c *Controller) Access(now int64, channel, globalBank int, write bool) int64 {
	if channel < 0 || channel >= c.cfg.Channels {
		panic(fmt.Sprintf("memctrl: channel %d out of range", channel))
	}
	if globalBank < 0 || globalBank >= c.cfg.RanksPerChannel*c.cfg.BanksPerRank {
		panic(fmt.Sprintf("memctrl: bank %d out of range", globalBank))
	}
	t := c.cfg.Timing
	start := max64(now, c.bankFree[channel][globalBank])
	start = c.afterRefresh(start)
	dataReady := start + int64(t.TRCD+t.CL)
	dataStart := c.applyCCD(channel, globalBank, max64(dataReady, c.busFree[channel]))
	complete := dataStart + int64(t.Burst)
	c.busFree[channel] = complete
	c.bankFree[channel][globalBank] = start + int64(t.TRC)
	c.busBusy += int64(t.Burst)
	c.bankBusy += int64(t.TRC)
	if complete > c.lastCompletion {
		c.lastCompletion = complete
	}

	if c.meter != nil {
		c.meter.RecordActivate(c.cfg.DevicesPerAccess)
		if write {
			c.meter.RecordWrite(c.cfg.DevicesPerAccess, c.cfg.BurstBeats)
		} else {
			c.meter.RecordRead(c.cfg.DevicesPerAccess, c.cfg.BurstBeats)
		}
	}
	if write {
		c.writes++
	} else {
		c.reads++
	}
	return complete
}

// Pairing selects the §4.2.4 design for keeping the two sub-lines of an
// upgraded access together.
type Pairing int

const (
	// PairPromote is the pointer-promotion design: each channel schedules
	// its sub-line independently (the partner is promoted to the head of
	// the other channel's queue when the first reaches its head); the
	// access completes when the slower channel finishes.
	PairPromote Pairing = iota
	// PairFIFO is the strict-FIFO sub-line queue design: both channels
	// synchronise before issuing, so neither sub-line starts until both
	// channels' banks are free. Simpler hardware, slightly worse latency —
	// the ablation benchmarks quantify the difference.
	PairFIFO
)

// AccessPaired books the two sub-line accesses of an upgraded 128 B line on
// the same global bank of both channels, under the controller's pairing
// policy (Config.Pairing). Only valid on two-channel configurations.
func (c *Controller) AccessPaired(now int64, globalBank int, write bool) int64 {
	if c.cfg.Channels != 2 {
		panic("memctrl: AccessPaired requires a two-channel configuration")
	}
	start := now
	if c.cfg.Pairing == PairFIFO {
		// Synchronised issue: wait for BOTH channels' banks.
		for ch := 0; ch < 2; ch++ {
			if free := c.bankFree[ch][globalBank]; free > start {
				start = free
			}
		}
	}
	// Each channel is a full access of its own (18 devices each).
	t0 := c.Access(start, 0, globalBank, write)
	t1 := c.Access(start, 1, globalBank, write)
	return max64(t0, t1)
}

// AccessOpenPage books one 64 B access under an OPEN-page row-buffer
// policy: the row stays open after the access, so a subsequent access to
// the same row skips the activate (row hit: CL + burst), while a different
// row pays precharge + activate (row miss). The paper's evaluated
// configuration is closed-page (use Access); this entry point exists for
// the row-policy ablation.
func (c *Controller) AccessOpenPage(now int64, channel, globalBank int, row int64, write bool) int64 {
	if channel < 0 || channel >= c.cfg.Channels {
		panic(fmt.Sprintf("memctrl: channel %d out of range", channel))
	}
	if globalBank < 0 || globalBank >= c.cfg.RanksPerChannel*c.cfg.BanksPerRank {
		panic(fmt.Sprintf("memctrl: bank %d out of range", globalBank))
	}
	if row < 0 {
		panic("memctrl: negative row")
	}
	t := c.cfg.Timing
	trp := t.TRP
	if trp == 0 {
		trp = t.TRCD // sensible DDR2 default: tRP == tRCD
	}
	start := max64(now, c.bankFree[channel][globalBank])
	start = c.afterRefresh(start)
	var dataReady int64
	if c.openRow[channel][globalBank] == row {
		// Row hit: column access only.
		dataReady = start + int64(t.CL)
	} else {
		// Row miss: precharge (if a row is open) + activate + column.
		penalty := int64(t.TRCD + t.CL)
		if c.openRow[channel][globalBank] >= 0 {
			penalty += int64(trp)
		}
		dataReady = start + penalty
	}
	dataStart := c.applyCCD(channel, globalBank, max64(dataReady, c.busFree[channel]))
	complete := dataStart + int64(t.Burst)
	c.busFree[channel] = complete
	c.bankFree[channel][globalBank] = complete
	c.openRow[channel][globalBank] = row
	c.busBusy += int64(t.Burst)
	c.bankBusy += complete - start
	if complete > c.lastCompletion {
		c.lastCompletion = complete
	}
	if c.meter != nil {
		// Activates only on row misses; the row-hit stream amortises them.
		if dataReady != start+int64(t.CL) {
			c.meter.RecordActivate(c.cfg.DevicesPerAccess)
		}
		if write {
			c.meter.RecordWrite(c.cfg.DevicesPerAccess, c.cfg.BurstBeats)
		} else {
			c.meter.RecordRead(c.cfg.DevicesPerAccess, c.cfg.BurstBeats)
		}
	}
	if write {
		c.writes++
	} else {
		c.reads++
	}
	return complete
}

// Stats returns read/write counts.
func (c *Controller) Stats() (reads, writes int64) { return c.reads, c.writes }

// BusUtilization returns the fraction of elapsed cycles the data buses were
// busy (averaged over channels). elapsed must be positive.
func (c *Controller) BusUtilization(elapsed int64) float64 {
	if elapsed <= 0 {
		panic("memctrl: non-positive elapsed time")
	}
	return float64(c.busBusy) / float64(elapsed*int64(c.cfg.Channels))
}

// BankUtilization returns the average fraction of time banks were busy —
// the activeFraction input of the background power model.
func (c *Controller) BankUtilization(elapsed int64) float64 {
	if elapsed <= 0 {
		panic("memctrl: non-positive elapsed time")
	}
	u := float64(c.bankBusy) / float64(elapsed*int64(c.TotalBanks()))
	if u > 1 {
		u = 1
	}
	return u
}

// LastCompletion returns the cycle at which the last booked access finishes.
func (c *Controller) LastCompletion() int64 { return c.lastCompletion }

// applyCCD delays a column command's data start to honour bank-group
// column-to-column spacing (tCCD_L to the same group, tCCD_S to another)
// and records the command. Banks interleave across groups (group = bank %
// BankGroups), so sequential bank interleaving alternates groups and pays
// the short gap. A no-op when the configuration has no bank groups or the
// timing no TCCDL — DDR2 configurations book identically to before.
func (c *Controller) applyCCD(channel, globalBank int, dataStart int64) int64 {
	t := c.cfg.Timing
	if c.cfg.BankGroups <= 1 || t.TCCDL <= 0 {
		return dataStart
	}
	group := (globalBank % c.cfg.BanksPerRank) % c.cfg.BankGroups
	if g := c.lastColGroup[channel]; g >= 0 {
		gap := int64(t.TCCDS)
		if g == group {
			gap = int64(t.TCCDL)
		}
		if earliest := c.lastCol[channel] + gap; earliest > dataStart {
			dataStart = earliest
		}
	}
	c.lastCol[channel] = dataStart
	c.lastColGroup[channel] = group
	return dataStart
}

// afterRefresh pushes a command start time out of any refresh window: with
// auto-refresh enabled, the first TRFC cycles of every TREFI period are
// consumed by the refresh command (all banks of the rank busy).
func (c *Controller) afterRefresh(start int64) int64 {
	t := c.cfg.Timing
	if t.TREFI <= 0 || t.TRFC <= 0 {
		return start
	}
	if offset := start % int64(t.TREFI); offset < int64(t.TRFC) {
		return start - offset + int64(t.TRFC)
	}
	return start
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
