// LOT-ECC + ARCC: exercises the Chapter 5 application of ARCC to LOT-ECC —
// the 9-device relaxed layout, its detection blind spot, the 18-device
// upgraded layout, and the Fig 7.6 lifetime cost of upgrading on faults.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math/rand"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/lotecc"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, lotecc.LineBytes)
	rng.Read(data)

	// Relaxed: the published 9-device LOT-ECC.
	nine := lotecc.New(lotecc.NineDevice)
	line := nine.Encode(data)

	// A whole device fails; Tier-1 checksums localize it and the XOR
	// parity reconstructs its share.
	for i := range line.Shares[5] {
		line.Shares[5][i] = 0xFF
	}
	line.Checksums[5] = 0xFFFF
	got, bad, err := nine.Decode(line)
	if err != nil || !bytes.Equal(got, data) {
		log.Fatalf("device failure not recovered: %v", err)
	}
	fmt.Printf("9-device LOT-ECC: device %d failure localized and reconstructed\n", bad)

	// The blind spot: a device that lies consistently (wrong data with a
	// matching checksum, e.g. a broken row decoder) slips through —
	// LOT-ECC's detection guarantee only covers all-0/all-1 failures.
	line = nine.Encode(data)
	other := make([]byte, len(line.Shares[3]))
	rng.Read(other)
	line.Shares[3] = other
	line.Checksums[3] = lotecc.ChecksumOf(other)
	if _, _, err := nine.Decode(line); err == nil {
		fmt.Println("9-device LOT-ECC: consistent wrong-data fault went UNDETECTED (the Ch. 2 caveat)")
	}

	// Upgraded: ARCC's 18-device layout adds a spare device (double chip
	// sparing) at the cost of twice the devices per access plus an extra
	// checksum-line read per read.
	eighteen := lotecc.New(lotecc.EighteenDevice)
	cost9, cost18 := nine.Cost(), eighteen.Cost()
	fmt.Printf("\naccess cost, relaxed vs upgraded:\n")
	fmt.Printf("  devices per read:     %d -> %d\n", cost9.DeviceAccessesPerRead, cost18.DeviceAccessesPerRead)
	fmt.Printf("  extra read per read:  %v -> %v\n", cost9.ExtraReadPerRead, cost18.ExtraReadPerRead)
	fmt.Printf("  extra write fraction: %.0f%% -> %.0f%%\n", cost9.ExtraWriteFraction*100, cost18.ExtraWriteFraction*100)
	fmt.Printf("  worst-case upgraded access = %.0fx a relaxed access\n", lotecc.WorstCaseUpgradedPowerFactor())

	// Fig 7.6: what the upgrades cost over a server's life, worst case —
	// run as a registered exhibit through the unified API, exactly as
	// cmd/arcc-experiments would.
	fig76, _ := exhibit.Lookup("f7.6")
	report, err := fig76.Run(context.Background(),
		exhibit.NewConfig(exhibit.WithSeed(7), exhibit.WithTrials(5000)))
	if err != nil {
		log.Fatal(err)
	}
	series := report.Data.(experiments.LifetimeResult)
	fmt.Printf("\nFig 7.6 worst-case overhead of ARCC+LOT-ECC vs 9-device LOT-ECC:\n")
	for fi, factor := range series.Factors {
		fmt.Printf("  %gx rates: year-7 average %.2f%%\n", factor, series.WorstCase[fi][6]*100)
	}
	fmt.Println("  (the paper reports 1.6% at 1x and <= 6.3% at 4x — in exchange for a 17x DUE-rate reduction)")
}
