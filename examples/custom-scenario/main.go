// Custom scenario: the declarative side of the exhibit API. A JSON file
// describes a sweep the paper never shipped — a denser channel (3 ranks
// of 12 devices), 3x fault rates with lane faults doubled on top,
// ARCC-on-LOT-ECC upgrade costs, an aggressive two-hour scrub, and a
// simulator sweep of two mixes at 25% of pages upgraded — and the
// experiments layer turns it into a runnable exhibit with the same
// structured reports as the paper's own figures.
//
// The same file works with the CLI:
//
//	arcc-experiments -scenario examples/custom-scenario/scenario.json -quick
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
)

func main() {
	// Load and validate the declarative description. Unknown fields,
	// unknown fault types, and out-of-range values are all rejected at
	// parse time, so a typo cannot silently run the wrong study.
	path := filepath.Join("examples", "custom-scenario", "scenario.json")
	if _, err := os.Stat(path); err != nil {
		path = "scenario.json" // run from the example's own directory
	}
	sc, err := exhibit.LoadScenario(path)
	if err != nil {
		log.Fatal(err)
	}

	// Turn it into an exhibit and run it exactly like a paper figure:
	// same Config, same cancellation, same report.
	ex, err := experiments.NewScenarioExhibit(sc)
	if err != nil {
		log.Fatal(err)
	}
	cfg := exhibit.NewConfig(exhibit.WithQuick(true), exhibit.WithSeed(1))
	report, err := ex.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	if err := (exhibit.TextRenderer{}).Render(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// The same report renders as JSON (typed rows under "data") or CSV —
	// pass -format json/csv to arcc-experiments for the full document.
	result := report.Data.(experiments.ScenarioResult)
	fmt.Printf("year-%d faulty pages %.3f%%, worst overhead %.3f%% — and the JSON/CSV renderers\n",
		sc.Years, result.FaultyFraction[sc.Years-1]*100, result.Overhead[sc.Years-1]*100)
	fmt.Println("serve the identical typed rows to machines.")
}
