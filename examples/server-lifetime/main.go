// Server lifetime: plays seven years of field-study fault arrivals against
// the reliability models, showing how much of the memory ends up upgraded
// and what it costs — the Fig 3.1 / Fig 7.4 story for a single server.
package main

import (
	"fmt"
	"math/rand"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/reliability"
)

func main() {
	const years = 7
	const channels = 5000
	rng := rand.New(rand.NewSource(2026))
	shape := faultmodel.ARCCChannelShape()
	rates := faultmodel.FieldStudyRates()

	// One concrete server: sample a single channel's fault history.
	fmt.Println("one server's fault history (72 devices, 7 years):")
	arrivals := faultmodel.SampleArrivals(rng, rates.Scale(20), 2, 36, years) // 20x rates so the story has events
	if len(arrivals) == 0 {
		fmt.Println("  (no faults)")
	}
	upgradedFraction := 0.0
	for _, a := range arrivals {
		span := shape.UpgradedFraction(a.Type)
		upgradedFraction += span
		if upgradedFraction > 1 {
			upgradedFraction = 1
		}
		fmt.Printf("  year %.2f: %-7v fault (rank %2d, device %2d) -> +%.4f%% of pages upgraded (total %.4f%%)\n",
			a.AtHours/faultmodel.HoursPerYear, a.Type, a.Rank, a.Device, span*100, upgradedFraction*100)
	}

	// The fleet view: average faulty-page fraction per year (Fig 3.1).
	fmt.Printf("\nfleet average over %d channels (1x field-study rates):\n", channels)
	frac := reliability.FaultyPageFraction(2026, mc.Options{}, rates, shape, 2, 36, years, channels)
	frac4 := reliability.FaultyPageFraction(2027, mc.Options{}, rates.Scale(4), shape, 2, 36, years, channels)
	fmt.Printf("  %-6s %-12s %-12s\n", "year", "1x rates", "4x rates")
	for y := 0; y < years; y++ {
		fmt.Printf("  %-6d %10.4f%% %10.4f%%\n", y+1, frac[y]*100, frac4[y]*100)
	}

	// What it costs: worst-case lifetime power overhead (Fig 7.4).
	ov := reliability.WorstCaseOverheads(shape, 2)
	overhead := reliability.LifetimeOverhead(2028, mc.Options{}, rates, 2, 36, years, channels, ov, 1)
	fmt.Printf("\nworst-case average power overhead (vs fault-free ARCC):\n")
	for y := 0; y < years; y++ {
		fmt.Printf("  year %d: %.3f%%\n", y+1, overhead[y]*100)
	}
	fmt.Printf("\neven at year %d the overhead is tiny next to the ~37%% fault-free saving —\n", years)
	fmt.Println("that asymmetry is the entire ARCC bet.")
}
