// Server lifetime: plays seven years of field-study fault arrivals against
// the reliability models, showing how much of the memory ends up upgraded
// and what it costs — the Fig 3.1 / Fig 7.4 story for a single server.
// The fleet view runs as a declarative scenario through the unified
// exhibit API: the same description a JSON file (or arcc-experiments
// -scenario) would carry, built here in code.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/faultmodel"
)

func main() {
	const years = 7
	rng := rand.New(rand.NewSource(2026))
	shape := faultmodel.ARCCChannelShape()
	rates := faultmodel.FieldStudyRates()

	// One concrete server: sample a single channel's fault history.
	fmt.Println("one server's fault history (72 devices, 7 years):")
	arrivals := faultmodel.SampleArrivals(rng, rates.Scale(20), 2, 36, years) // 20x rates so the story has events
	if len(arrivals) == 0 {
		fmt.Println("  (no faults)")
	}
	upgradedFraction := 0.0
	for _, a := range arrivals {
		span := shape.UpgradedFraction(a.Type)
		upgradedFraction += span
		if upgradedFraction > 1 {
			upgradedFraction = 1
		}
		fmt.Printf("  year %.2f: %-7v fault (rank %2d, device %2d) -> +%.4f%% of pages upgraded (total %.4f%%)\n",
			a.AtHours/faultmodel.HoursPerYear, a.Type, a.Rank, a.Device, span*100, upgradedFraction*100)
	}

	// The fleet view, declaratively: a scenario describing the baseline
	// 72-device channel, run through the exhibit API like any paper
	// figure. A second scenario at 4x rates gives the sensitivity column.
	fleet := func(factor float64) experiments.ScenarioResult {
		s := exhibit.DefaultScenario()
		s.Name = fmt.Sprintf("fleet-%gx", factor)
		s.RateFactor = factor
		s.DevicesPerRank = 36
		s.Years = years
		s.Trials = 5000
		ex, err := experiments.NewScenarioExhibit(s)
		if err != nil {
			log.Fatal(err)
		}
		report, err := ex.Run(context.Background(), exhibit.NewConfig(exhibit.WithSeed(2026)))
		if err != nil {
			log.Fatal(err)
		}
		return report.Data.(experiments.ScenarioResult)
	}
	at1, at4 := fleet(1), fleet(4)

	fmt.Printf("\nfleet average over %d channels (1x field-study rates):\n", at1.Scenario.Trials)
	fmt.Printf("  %-6s %-12s %-12s\n", "year", "1x rates", "4x rates")
	for y := 0; y < years; y++ {
		fmt.Printf("  %-6d %10.4f%% %10.4f%%\n", y+1, at1.FaultyFraction[y]*100, at4.FaultyFraction[y]*100)
	}

	// What it costs: worst-case lifetime power overhead (Fig 7.4 style,
	// chipkill upgrade factor 2), from the same scenario report.
	fmt.Printf("\nworst-case average power overhead (vs fault-free ARCC):\n")
	for y := 0; y < years; y++ {
		fmt.Printf("  year %d: %.3f%%\n", y+1, at1.Overhead[y]*100)
	}
	fmt.Printf("\neven at year %d the overhead is tiny next to the ~37%% fault-free saving —\n", years)
	fmt.Println("that asymmetry is the entire ARCC bet.")
}
