// Scrub upgrade: demonstrates why ARCC hardens the memory scrubber
// (§4.2.2). A stuck-at-0 device sitting under zero-filled memory is
// invisible to a conventional read-correct-writeback scrub, but the 4-step
// write-0/write-1 scrubber exposes it — and the page gets upgraded before
// the fault can pair up with a second one.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/exhibit"
	_ "arcc/internal/experiments" // registers the ablation-scrub exhibit
	"arcc/internal/scrub"
)

func newMem() *core.Controller {
	mem := core.New(core.Config{Pages: 16, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	mem.RelaxAll()
	// The memory holds zeros (freshly scrubbed server) and device 2 of
	// channel 0, rank 0 develops a stuck-at-0 fault: every cell it serves
	// reads as zero... which is exactly what is stored. Hidden.
	mem.InjectFault(0, 0, dram.Fault{Device: 2, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	return mem
}

func main() {
	conventional := scrub.New(newMem(), scrub.Conventional)
	found := conventional.FullScrub()
	fmt.Printf("conventional scrub: %d faulty pages found (the fault hides in the data)\n", len(found))

	mem := newMem()
	fourStep := scrub.New(mem, scrub.FourStep)
	found = fourStep.FullScrub()
	st := fourStep.Stats()
	fmt.Printf("four-step scrub:    %d faulty pages found, %d hidden stuck-at lines exposed\n",
		len(found), st.HiddenStuckAt)
	fmt.Printf("pages upgraded:     %d (now running 4 check symbols per codeword)\n", st.PagesUpgraded)

	// Cost of the stronger scrub, using the paper's own arithmetic
	// (§4.2.2: 4 GB at 667 MT/s, one scrub every four hours).
	m := scrub.CostModel{
		MemoryBytes:           4 << 30,
		ChannelBytesPerSecond: 667e6 * 16,
		ScrubIntervalHours:    4,
	}
	fmt.Printf("\nscrub cost (4 GB channel, 128-bit 667 MT/s):\n")
	fmt.Printf("  conventional: %.2f s per scrub, %.5f%% of bandwidth\n",
		m.ScrubSeconds(scrub.Conventional), m.BandwidthOverhead(scrub.Conventional)*100)
	fmt.Printf("  four-step:    %.2f s per scrub, %.5f%% of bandwidth\n",
		m.ScrubSeconds(scrub.FourStep), m.BandwidthOverhead(scrub.FourStep)*100)
	fmt.Println("  (the paper's 2.4 s / 0.0167% numbers)")

	// The full coverage comparison is a registered exhibit; render it
	// through the unified API, exactly as `arcc-experiments -exhibit
	// ablation-scrub` would.
	fmt.Println()
	ablation, _ := exhibit.Lookup("ablation-scrub")
	report, err := ablation.Run(context.Background(), exhibit.NewConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := (exhibit.TextRenderer{}).Render(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
