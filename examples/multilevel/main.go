// Multilevel: walks the §5.1 extension — a four-channel memory whose pages
// can climb two upgrade levels: 2 check symbols (relaxed) -> 4 (upgraded)
// -> 8 (upgraded8, striped across all four channels). The second level
// survives two simultaneous whole-device failures in different channels,
// which the 4-check commercial code can only detect.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"

	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/pagetable"
	"arcc/internal/scrub"
)

func main() {
	mem := core.New(core.Config{
		Pages:           64,
		Channels:        4,
		RanksPerChannel: 2,
		BanksPerDevice:  8,
		RowsPerBank:     2,
	})
	mem.RelaxAll()
	scrubber := scrub.New(mem, scrub.FourStep)
	scrubber.SetSecondLevel(true)

	// A working set on page 4.
	page := 4
	rng := rand.New(rand.NewSource(1))
	want := make([][]byte, core.LinesPerPage)
	for line := range want {
		want[line] = make([]byte, core.LineBytes)
		rng.Read(want[line])
		if err := mem.WriteLine(page, line, want[line]); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("page %d starts %v (one 18-device channel per access)\n", page, mem.PageMode(page))

	// Fault #1: a device dies in channel 1. The scrub upgrades the page.
	mem.InjectFault(1, 0, dram.Fault{Device: 6, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	scrubber.FullScrub()
	fmt.Printf("after fault #1 + scrub: page is %v (two channels, 4 check symbols)\n", mem.PageMode(page))

	// Fault #2: a device dies in channel 3. With second-level upgrades
	// enabled, the next scrub promotes the page to upgraded8.
	mem.InjectFault(3, 0, dram.Fault{Device: 11, Scope: dram.ScopeDevice, Mode: dram.StuckAt0})
	scrubber.FullScrub()
	fmt.Printf("after fault #2 + scrub: page is %v (four channels, 8 check symbols)\n", mem.PageMode(page))
	if mem.PageMode(page) != pagetable.Upgraded8 {
		log.Fatal("expected second-level upgrade")
	}

	// Both dead devices corrupt every codeword of the page — two bad
	// symbols per codeword — and the 8-check code corrects them outright.
	for line := range want {
		got, err := mem.ReadLine(page, line)
		if err != nil {
			log.Fatalf("line %d: %v", line, err)
		}
		if !bytes.Equal(got, want[line]) {
			log.Fatalf("line %d: data mismatch", line)
		}
	}
	fmt.Println("all lines intact under TWO simultaneous whole-device faults")

	st := mem.Stats()
	fmt.Printf("controller: %d corrections, %d DUEs, %d first-level upgrades, %d second-level upgrades\n",
		st.Corrected, st.DUEs, st.PageUpgrades, st.StrongUpgrades)
	fmt.Printf("only %.1f%% of pages pay the 4-channel cost; the rest stay cheap\n",
		float64(mem.Table().Count(pagetable.Upgraded8))/float64(mem.Pages())*100)
}
