// Quickstart: the ARCC life cycle on a small memory — boot upgraded, relax
// everything after the boot scrub, absorb a device fault in relaxed mode,
// have the scrubber catch it and upgrade the page, and read the data back
// intact throughout.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"os"

	"arcc/internal/core"
	"arcc/internal/dram"
	"arcc/internal/exhibit"
	_ "arcc/internal/experiments" // registers the paper's exhibits
	"arcc/internal/pagetable"
	"arcc/internal/scrub"
)

func main() {
	// A small ARCC memory: 32 pages over two channels x two 18-device ranks.
	mem := core.New(core.Config{
		Pages:           32,
		RanksPerChannel: 2,
		BanksPerDevice:  8,
		RowsPerBank:     1,
		Upgrade:         core.UpgradeSCCDCD,
	})
	scrubber := scrub.New(mem, scrub.FourStep)

	// Boot: pages start upgraded; the boot scrub relaxes fault-free pages.
	relaxed := scrubber.BootScrub()
	fmt.Printf("boot scrub: %d/%d pages relaxed to 2-check-symbol mode\n", relaxed, mem.Pages())

	// Write a working set.
	page := 3
	want := make([][]byte, core.LinesPerPage)
	for line := range want {
		want[line] = bytes.Repeat([]byte{byte(line)}, core.LineBytes)
		if err := mem.WriteLine(page, line, want[line]); err != nil {
			log.Fatalf("write: %v", err)
		}
	}

	// A whole DRAM device dies in channel 0, rank 0.
	mem.InjectFault(0, 0, dram.Fault{Device: 7, Scope: dram.ScopeDevice, Mode: dram.StuckAt1})
	fmt.Println("injected: whole-device stuck-at-1 fault in channel 0, rank 0")

	// Reads still succeed — relaxed mode corrects one bad symbol per
	// codeword — and the correction counter ticks.
	got, err := mem.ReadLine(page, 0)
	if err != nil || !bytes.Equal(got, want[0]) {
		log.Fatalf("read under fault: err=%v", err)
	}
	fmt.Printf("read under fault: data intact, %d symbols corrected so far\n", mem.Stats().Corrected)

	// The periodic scrub finds the fault and upgrades the affected pages.
	faulty := scrubber.FullScrub()
	fmt.Printf("scrub: %d pages found faulty and upgraded to 4-check-symbol mode\n", len(faulty))
	fmt.Printf("page %d is now %v; upgraded fraction %.1f%%\n",
		page, mem.PageMode(page), mem.Table().UpgradedFraction()*100)

	// Data survives the upgrade, now served by both channels in lockstep.
	for line := range want {
		got, err := mem.ReadLine(page, line)
		if err != nil || !bytes.Equal(got, want[line]) {
			log.Fatalf("read after upgrade: line %d err=%v", line, err)
		}
	}
	fmt.Println("all lines intact after upgrade")

	// The cost: an upgraded read touches both channels (36 devices instead
	// of 18) — exactly the power ARCC avoided while the page was healthy.
	before := mem.Stats().SubLineAccesses
	if _, err := mem.ReadLine(page, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one upgraded read = %d sub-line accesses (vs 1 in relaxed mode)\n",
		mem.Stats().SubLineAccesses-before)

	if mem.PageMode(0) == pagetable.Relaxed {
		fmt.Println("pages in the healthy rank stay relaxed and cheap")
	}

	// How much memory a fault like this upgrades at the paper's scale is
	// Table 7.4 — a registered exhibit; render it through the unified API.
	fmt.Println()
	t74, _ := exhibit.Lookup("t7.4")
	report, err := t74.Run(context.Background(), exhibit.NewConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := (exhibit.TextRenderer{}).Render(os.Stdout, report); err != nil {
		log.Fatal(err)
	}
}
