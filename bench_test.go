package arcc_test

import (
	"io"
	"testing"

	"arcc/internal/experiments"
)

// The benchmarks below regenerate the paper's tables and figures — one
// benchmark per exhibit, as the repository's reproduction entry points.
// They run the Quick profile so `go test -bench=.` finishes in minutes; the
// cmd/arcc-experiments binary runs the full-scale versions. Each benchmark
// also renders the exhibit (to io.Discard) so the formatting code is
// exercised.

var quick = experiments.Options{Quick: true}

func BenchmarkTable71(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FprintTable71(io.Discard)
	}
}

func BenchmarkTable72(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FprintTable72(io.Discard)
	}
}

func BenchmarkTable73(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FprintTable73(io.Discard)
	}
}

func BenchmarkTable74(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.FprintTable74(io.Discard)
	}
}

func BenchmarkFig31FaultyMemoryVsTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig31(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig61ReliabilityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig61(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig71PowerAndPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig71(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig72PowerWithFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig72(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig73PerformanceWithFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig73(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig74PowerOverheadLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig74(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig75PerfOverheadLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig75(quick)
		r.Fprint(io.Discard)
	}
}

func BenchmarkFig76ARCCOnLOTECC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig76(quick)
		r.Fprint(io.Discard)
	}
}
