package arcc_test

import (
	"context"
	"io"
	"testing"

	"arcc/internal/exhibit"
	_ "arcc/internal/experiments" // registers the paper's exhibits
)

// The benchmarks below regenerate the paper's tables and figures — one
// benchmark per exhibit, as the repository's reproduction entry points,
// all driven through the exhibit registry exactly like the
// cmd/arcc-experiments binary. They run the Quick profile so `go test
// -bench=.` finishes in minutes; the binary runs the full-scale versions.
// Each benchmark also renders the exhibit (to io.Discard) so the
// formatting code is exercised.

// benchExhibit runs one registered exhibit per iteration and renders its
// report with the text renderer.
func benchExhibit(b *testing.B, name string) {
	b.Helper()
	e, ok := exhibit.Lookup(name)
	if !ok {
		b.Fatalf("exhibit %q not registered", name)
	}
	cfg := exhibit.NewConfig(exhibit.WithQuick(true))
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := e.Run(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := (exhibit.TextRenderer{}).Render(io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable71(b *testing.B) { benchExhibit(b, "t7.1") }

func BenchmarkTable72(b *testing.B) { benchExhibit(b, "t7.2") }

func BenchmarkTable73(b *testing.B) { benchExhibit(b, "t7.3") }

func BenchmarkTable74(b *testing.B) { benchExhibit(b, "t7.4") }

func BenchmarkFig31FaultyMemoryVsTime(b *testing.B) { benchExhibit(b, "f3.1") }

func BenchmarkFig61ReliabilityComparison(b *testing.B) { benchExhibit(b, "f6.1") }

func BenchmarkFig71PowerAndPerformance(b *testing.B) { benchExhibit(b, "f7.1") }

func BenchmarkFig72PowerWithFault(b *testing.B) { benchExhibit(b, "f7.2") }

func BenchmarkFig73PerformanceWithFault(b *testing.B) { benchExhibit(b, "f7.3") }

func BenchmarkFig74PowerOverheadLifetime(b *testing.B) { benchExhibit(b, "f7.4") }

func BenchmarkFig75PerfOverheadLifetime(b *testing.B) { benchExhibit(b, "f7.5") }

func BenchmarkFig76ARCCOnLOTECC(b *testing.B) { benchExhibit(b, "f7.6") }
