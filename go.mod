module arcc

go 1.24
