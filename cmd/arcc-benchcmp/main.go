// Command arcc-benchcmp is the CLI for the performance-trajectory gate:
// it compares two benchmark files recorded by scripts/bench.sh and exits
// nonzero when the newer one regresses the hot path (>15% ns/op slowdown
// by default, or a zero-alloc benchmark starting to allocate).
//
// Usage:
//
//	arcc-benchcmp [-threshold 0.15] [-exclude '^BenchmarkFig'] old.json new.json
//
// CI runs it on every push, diffing the PR's fresh BENCH_<ref>.json
// against the newest BENCH_PR<N>.json recorded in the repository.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"arcc/internal/benchcmp"
)

func main() {
	threshold := flag.Float64("threshold", benchcmp.DefaultThreshold,
		"fractional ns/op slowdown that fails the gate")
	exclude := flag.String("exclude", benchcmp.DefaultExcludePattern,
		"regexp of benchmark names reported but never gating (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: %s [flags] old.json new.json\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	var excludeRe *regexp.Regexp
	if *exclude != "" {
		var err error
		if excludeRe, err = regexp.Compile(*exclude); err != nil {
			fmt.Fprintf(os.Stderr, "arcc-benchcmp: bad -exclude: %v\n", err)
			os.Exit(2)
		}
	}

	oldPts, err := benchcmp.Load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	newPts, err := benchcmp.Load(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "arcc-benchcmp: %v\n", err)
		os.Exit(2)
	}

	rep := benchcmp.Compare(oldPts, newPts, benchcmp.Options{Threshold: *threshold, Exclude: excludeRe})
	if err := rep.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "arcc-benchcmp: %v\n", err)
		os.Exit(2)
	}
	if rep.Failed() {
		os.Exit(1)
	}
}
