// Command arcc-server runs the ARCC sweep service: a long-running HTTP
// front end over the exhibit registry that accepts exhibit and scenario
// jobs, executes them on a bounded worker pool (the same internal/mc
// sharding and pooled sim scratch the CLI uses, so results are
// bit-identical to arcc-experiments at any parallelism), caches identical
// results, and streams reports as JSON, CSV, or text.
//
// Usage:
//
//	arcc-server [-addr :8080] [-workers N] [-queue N] [-max-trials N]
//	            [-max-cache N] [-max-jobs N] [-max-job-seconds N]
//	            [-drain dur] [-state-dir dir] [-checkpoint-shards N]
//	            [-checkpoint-seconds N]
//
// API:
//
//	GET    /v1/healthz          liveness + run counters
//	GET    /v1/exhibits         the registry: every runnable exhibit
//	POST   /v1/jobs             submit {exhibit|scenario, seed, trials,
//	                            parallel, quick, format}; 202 + job id
//	                            (201 when served from the result cache)
//	GET    /v1/jobs             all jobs, submission order
//	GET    /v1/jobs/{id}        status + live progress counts
//	GET    /v1/jobs/{id}/result the rendered report (?format= overrides);
//	                            202 while running, 410 after a cancel
//	DELETE /v1/jobs/{id}        cancel; the engine stops within one shard
//
// Examples:
//
//	# run Figure 3.1 in quick mode and fetch the JSON report
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"exhibit": "f3.1", "quick": true, "seed": 1}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/v1/jobs/job-1/result
//
//	# submit a declarative scenario (same schema as -scenario files)
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d "{\"scenario\": $(cat examples/custom-scenario/scenario.json),
//	          \"quick\": true, \"format\": \"csv\"}"
//
//	# cancel a running sweep
//	curl -s -X DELETE localhost:8080/v1/jobs/job-2
//
// A request that could reach a library panic path — an unknown exhibit,
// an invalid scenario, a negative or oversized trial count, a bad format
// — is rejected with HTTP 400 at the boundary, and residual panics in
// handlers or jobs become error responses, never a process exit. Memory
// stays bounded over a long run: at most -max-cache reports are cached
// (oldest evicted) and at most -max-jobs finished jobs stay listed
// (oldest forgotten; their ids then answer 404). -max-job-seconds bounds
// one job's wall clock (a sweep that outlives it is canceled and marked
// failed). On SIGINT/SIGTERM the server stops accepting work and drains
// in-flight jobs for -drain before canceling them.
//
// With -state-dir the service is durable: accepted jobs land in an
// append-only fsync'd journal, completed reports persist as
// content-addressed files, and running jobs checkpoint their completed
// Monte Carlo shards every -checkpoint-shards shards or
// -checkpoint-seconds seconds. After a crash (even kill -9) or a drain
// timeout, the next start replays the journal, restores the result
// cache, and re-enqueues interrupted jobs from their latest checkpoint;
// because the engine merges shards deterministically, the resumed
// report is byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arcc/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "arcc-server: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent jobs (0 = all CPUs)")
	queue := flag.Int("queue", server.DefaultQueueDepth, "max queued jobs before submissions get 503")
	maxTrials := flag.Int("max-trials", server.DefaultMaxTrials, "per-job Monte Carlo trial cap")
	maxCache := flag.Int("max-cache", server.DefaultMaxCachedResults, "result-cache bound (oldest entries evicted)")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxFinishedJobs, "finished jobs retained before the oldest are forgotten")
	maxJobSeconds := flag.Int("max-job-seconds", 0, "per-job wall-clock cap in seconds (0 = unlimited)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline for in-flight jobs")
	stateDir := flag.String("state-dir", "", "directory for durable state (journal, results, checkpoints); empty = in-memory only")
	ckShards := flag.Int("checkpoint-shards", server.DefaultCheckpointEveryShards, "checkpoint a running job every N completed shards (needs -state-dir)")
	ckSeconds := flag.Int("checkpoint-seconds", int(server.DefaultCheckpointPeriod/time.Second), "also checkpoint every N seconds (needs -state-dir)")
	flag.Parse()

	svc, err := server.New(server.Options{
		Workers:               *workers,
		QueueDepth:            *queue,
		MaxTrials:             *maxTrials,
		MaxCachedResults:      *maxCache,
		MaxFinishedJobs:       *maxJobs,
		MaxJobDuration:        time.Duration(*maxJobSeconds) * time.Second,
		StateDir:              *stateDir,
		CheckpointEveryShards: *ckShards,
		CheckpointPeriod:      time.Duration(*ckSeconds) * time.Second,
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("arcc-server listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	log.Printf("arcc-server shutting down (drain %s)", *drain)
	deadline, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Stop the listener first so no new jobs arrive, then drain the pool;
	// jobs still running at the deadline are canceled (the engine stops
	// within one shard) before the workers are awaited.
	if err := httpSrv.Shutdown(deadline); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(deadline); err != nil {
		log.Printf("drain deadline hit, jobs canceled: %v", err)
	}
	return nil
}
