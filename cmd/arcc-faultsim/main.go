// Command arcc-faultsim runs the reliability Monte Carlo directly: the
// faulty-page fraction over a memory channel's lifetime (Fig 3.1), the
// lifetime power-overhead series (Fig 7.4 style), and the closed-form SDC
// models (Fig 6.1), with configurable fault rates and scrub interval.
//
// Usage:
//
//	arcc-faultsim [-years 7] [-channels 10000] [-factor 1] [-scrub 4]
//	              [-ranks 2] [-devices 36] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"

	"arcc/internal/faultmodel"
	"arcc/internal/reliability"
)

func main() {
	years := flag.Int("years", 7, "operational lifespan in years")
	channels := flag.Int("channels", 10000, "Monte Carlo channels")
	factor := flag.Float64("factor", 1, "fault-rate factor over the field study")
	scrub := flag.Float64("scrub", 4, "scrub interval in hours")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	devices := flag.Int("devices", 36, "devices per rank")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rates := faultmodel.FieldStudyRates().Scale(*factor)
	rng := rand.New(rand.NewSource(*seed))
	shape := faultmodel.ARCCChannelShape()

	fmt.Printf("Fault rates (%gx field study), %d x %d-device ranks, %d channels, %d years\n\n",
		*factor, *ranks, *devices, *channels, *years)

	fmt.Println("Faulty-page fraction by year (Fig 3.1 methodology):")
	frac := reliability.FaultyPageFraction(rng, rates, shape, *ranks, *devices, *years, *channels)
	for y, f := range frac {
		fmt.Printf("  year %d: %8.4f%%\n", y+1, f*100)
	}

	fmt.Println("\nLifetime worst-case power overhead (Fig 7.4 methodology, factor 2 on upgraded pages):")
	ov := reliability.WorstCaseOverheads(shape, 2)
	overhead := reliability.LifetimeOverhead(rng, rates, *ranks, *devices, *years, *channels, ov, 1)
	for y, f := range overhead {
		fmt.Printf("  year %d: %8.4f%%\n", y+1, f*100)
	}

	p := reliability.Params{
		Rates:           rates,
		RanksPerChannel: *ranks,
		DevicesPerRank:  *devices,
		Geom:            reliability.RankGeom{Devices: *devices, Banks: 8, Rows: 16384, Cols: 64},
		ScrubHours:      *scrub,
		LifeYears:       float64(*years),
	}
	fmt.Println("\nSDC models (Fig 6.1 methodology):")
	arcc := reliability.SDCsPer1000MachineYears(reliability.ARCCDEDExpectedSDCs(p), p.LifeYears)
	sccdcd := reliability.SDCsPer1000MachineYears(reliability.SCCDCDExpectedSDCs(p), p.LifeYears)
	fmt.Printf("  SCCDCD DED: %.3e SDCs per 1000 machine-years\n", sccdcd)
	fmt.Printf("  ARCC DED:   %.3e SDCs per 1000 machine-years\n", arcc)
}
