// Command arcc-faultsim runs the reliability Monte Carlo directly: the
// faulty-page fraction over a memory channel's lifetime (Fig 3.1), the
// worst-case lifetime overhead series (Fig 7.4 style), and the
// closed-form SDC/DUE models (Fig 6.1), with configurable fault rates,
// channel geometry, upgrade-cost scheme, and scrub interval.
//
// Usage:
//
//	arcc-faultsim [-years 7] [-trials 10000] [-factor 1] [-scrub 4]
//	              [-ranks 2] [-devices 36] [-scheme chipkill|lotecc]
//	              [-dram ddr2|ddr4|ddr5] [-width 4|8|16] [-trace file.trc]
//	              [-seed 1] [-parallel 0] [-progress] [-format text|json|csv]
//
// The command is a thin front end over the declarative scenario layer: the
// flags assemble an exhibit.Scenario (the same structure -scenario JSON
// files feed to arcc-experiments) and run it through the unified exhibit
// API, so the output is available in every report format. The Monte Carlo
// runs on the sharded engine (internal/mc): -parallel sets the worker
// count (0 = all CPUs, 1 = serial) and does not change the numbers —
// output is bit-identical at any parallelism for a given seed. -progress
// reports trial completion on stderr, and Ctrl-C cancels within one shard.
//
// -trace additionally replays a recorded access trace (the workload trace
// format arcc-memsim can record) through the full-system simulator as a
// "trace" row of the report's simulator sweep; -dram and -width select the
// memory generation and ARCC device width that simulator models.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/mc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "arcc-faultsim: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	years := flag.Int("years", 7, "operational lifespan in years")
	trials := flag.Int("trials", 10000, "Monte Carlo trials (simulated channels)")
	channels := flag.Int("channels", 0, "deprecated alias for -trials")
	factor := flag.Float64("factor", 1, "fault-rate factor over the field study")
	scrub := flag.Float64("scrub", 4, "scrub interval in hours")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	devices := flag.Int("devices", 36, "devices per rank")
	scheme := flag.String("scheme", "chipkill", "upgraded-access cost model: chipkill (2x) or lotecc (4x)")
	dramGen := flag.String("dram", "", "simulator memory generation for -trace runs: ddr2, ddr4, or ddr5")
	width := flag.Int("width", 0, "ARCC device width in bits for -trace runs: 4, 8, or 16 (0 = 8)")
	trace := flag.String("trace", "", "replay this trace file (workload trace format) through the full-system simulator alongside the Monte Carlo")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "Monte Carlo workers (0 = all CPUs, 1 = serial)")
	progress := flag.Bool("progress", false, "report Monte Carlo progress on stderr")
	format := flag.String("format", "text", "output format: text, json, or csv")
	flag.Parse()

	n := *trials
	if *channels > 0 {
		n = *channels
	}

	s := exhibit.DefaultScenario()
	s.Name = "faultsim"
	s.Description = fmt.Sprintf("%gx field-study rates over %d x %d-device ranks", *factor, *ranks, *devices)
	s.RateFactor = *factor
	s.Ranks = *ranks
	s.DevicesPerRank = *devices
	s.Years = *years
	s.Trials = n
	s.ScrubHours = *scrub
	s.Scheme = *scheme
	s.DRAM = *dramGen
	s.Width = *width
	s.Trace = *trace
	if err := s.Validate(); err != nil {
		return err
	}

	renderer, err := exhibit.RendererFor(*format)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := []exhibit.Option{exhibit.WithSeed(*seed), exhibit.WithParallel(*parallel)}
	if *progress {
		opts = append(opts, exhibit.WithProgress(
			exhibit.ProgressFunc(mc.NewProgressPrinter(os.Stderr, "  mc"))))
	}
	cfg := exhibit.NewConfig(opts...)

	ex, err := experiments.NewScenarioExhibit(s)
	if err != nil {
		return err
	}
	report, err := ex.Run(ctx, cfg)
	if err != nil {
		return err
	}
	return renderer.Render(os.Stdout, report)
}
