// Command arcc-faultsim runs the reliability Monte Carlo directly: the
// faulty-page fraction over a memory channel's lifetime (Fig 3.1), the
// lifetime power-overhead series (Fig 7.4 style), and the closed-form SDC
// models (Fig 6.1), with configurable fault rates and scrub interval.
//
// Usage:
//
//	arcc-faultsim [-years 7] [-trials 10000] [-factor 1] [-scrub 4]
//	              [-ranks 2] [-devices 36] [-seed 1] [-parallel 0]
//	              [-progress]
//
// The Monte Carlo runs on the sharded engine (internal/mc): -parallel sets
// the worker count (0 = all CPUs, 1 = serial) and does not change the
// numbers — output is bit-identical at any parallelism for a given seed.
// -progress reports trial completion on stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"arcc/internal/faultmodel"
	"arcc/internal/mc"
	"arcc/internal/reliability"
)

func main() {
	years := flag.Int("years", 7, "operational lifespan in years")
	trials := flag.Int("trials", 10000, "Monte Carlo trials (simulated channels)")
	channels := flag.Int("channels", 0, "deprecated alias for -trials")
	factor := flag.Float64("factor", 1, "fault-rate factor over the field study")
	scrub := flag.Float64("scrub", 4, "scrub interval in hours")
	ranks := flag.Int("ranks", 2, "ranks per channel")
	devices := flag.Int("devices", 36, "devices per rank")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "Monte Carlo workers (0 = all CPUs, 1 = serial)")
	progress := flag.Bool("progress", false, "report Monte Carlo progress on stderr")
	flag.Parse()

	n := *trials
	if *channels > 0 {
		n = *channels
	}
	if n <= 0 || *years <= 0 {
		fmt.Fprintf(os.Stderr, "arcc-faultsim: -trials and -years must be positive (got %d, %d)\n", n, *years)
		os.Exit(2)
	}
	// A fresh printer per Monte Carlo job keeps the 10% ticks independent.
	opts := func() mc.Options {
		o := mc.Options{Parallelism: *parallel}
		if *progress {
			o.Progress = mc.NewProgressPrinter(os.Stderr, "  mc")
		}
		return o
	}

	rates := faultmodel.FieldStudyRates().Scale(*factor)
	shape := faultmodel.ARCCChannelShape()

	fmt.Printf("Fault rates (%gx field study), %d x %d-device ranks, %d trials, %d years, %d workers\n\n",
		*factor, *ranks, *devices, n, *years, workerCount(*parallel))

	fmt.Println("Faulty-page fraction by year (Fig 3.1 methodology):")
	frac := reliability.FaultyPageFraction(*seed, opts(), rates, shape, *ranks, *devices, *years, n)
	for y, f := range frac {
		fmt.Printf("  year %d: %8.4f%%\n", y+1, f*100)
	}

	fmt.Println("\nLifetime worst-case power overhead (Fig 7.4 methodology, factor 2 on upgraded pages):")
	ov := reliability.WorstCaseOverheads(shape, 2)
	overhead := reliability.LifetimeOverhead(mc.DeriveSeed(*seed, 1), opts(), rates, *ranks, *devices, *years, n, ov, 1)
	for y, f := range overhead {
		fmt.Printf("  year %d: %8.4f%%\n", y+1, f*100)
	}

	p := reliability.Params{
		Rates:           rates,
		RanksPerChannel: *ranks,
		DevicesPerRank:  *devices,
		Geom:            reliability.RankGeom{Devices: *devices, Banks: 8, Rows: 16384, Cols: 64},
		ScrubHours:      *scrub,
		LifeYears:       float64(*years),
	}
	fmt.Println("\nSDC models (Fig 6.1 methodology):")
	arcc := reliability.SDCsPer1000MachineYears(reliability.ARCCDEDExpectedSDCs(p), p.LifeYears)
	sccdcd := reliability.SDCsPer1000MachineYears(reliability.SCCDCDExpectedSDCs(p), p.LifeYears)
	fmt.Printf("  SCCDCD DED: %.3e SDCs per 1000 machine-years\n", sccdcd)
	fmt.Printf("  ARCC DED:   %.3e SDCs per 1000 machine-years\n", arcc)
}

func workerCount(parallel int) int {
	return mc.Options{Parallelism: parallel}.Workers()
}
