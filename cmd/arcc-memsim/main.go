// Command arcc-memsim runs one workload mix through the full-system
// simulator and reports IPC, DRAM power, and memory traffic for the chosen
// memory system and upgraded-page fraction.
//
// Usage:
//
//	arcc-memsim [-mix 1..12] [-system arcc|baseline] [-upgraded 0..1]
//	            [-instructions 1000000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"arcc/internal/sim"
	"arcc/internal/workload"
)

func main() {
	mixIdx := flag.Int("mix", 1, "workload mix (1..12, Table 7.3)")
	system := flag.String("system", "arcc", "memory system: arcc or baseline")
	upgraded := flag.Float64("upgraded", 0, "fraction of pages in upgraded mode")
	instructions := flag.Int64("instructions", 1_000_000, "instructions per core")
	seed := flag.Int64("seed", 1, "random seed")
	dumpTrace := flag.String("dump-trace", "", "write core 0's access stream to this file and exit")
	traceAccesses := flag.Int("trace-accesses", 100_000, "accesses to record with -dump-trace")
	replayTrace := flag.String("trace", "", "replay this recorded trace on core 0 instead of its generator")
	flag.Parse()

	if *mixIdx < 1 || *mixIdx > 12 {
		fmt.Fprintln(os.Stderr, "mix must be 1..12")
		os.Exit(2)
	}
	var sys sim.MemorySystem
	switch *system {
	case "arcc":
		sys = sim.ARCC
	case "baseline":
		sys = sim.Baseline
	default:
		fmt.Fprintf(os.Stderr, "unknown system %q\n", *system)
		os.Exit(2)
	}

	mix := workload.Mixes()[*mixIdx-1]
	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stream := mix.Benchmarks[0].NewStream(*seed, 0)
		if err := workload.Record(f, stream, *traceAccesses); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d accesses of %s (core 0 of %s) to %s\n",
			*traceAccesses, mix.Benchmarks[0].Name, mix.Name, *dumpTrace)
		return
	}
	cfg := sim.DefaultConfig(mix, sys)
	cfg.UpgradedFraction = *upgraded
	cfg.InstructionsPerCore = *instructions
	cfg.Seed = *seed
	if *replayTrace != "" {
		f, err := os.Open(*replayTrace)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		accesses, err := workload.ReadAll(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Sources[0] = workload.NewReplaySource(accesses)
		fmt.Printf("replaying %d recorded accesses on core 0\n", len(accesses))
	}
	r := sim.Run(cfg)

	fmt.Printf("%s on %s (upgraded fraction %.4f, %d instructions/core)\n", mix.Name, sys, *upgraded, *instructions)
	for i, b := range mix.Benchmarks {
		fmt.Printf("  core %d: %-12s IPC %.3f\n", i, b.Name, r.PerCoreIPC[i])
	}
	fmt.Printf("  IPC (sum):          %.3f\n", r.IPCSum)
	fmt.Printf("  DRAM power:         %.1f mW\n", r.PowerMW)
	fmt.Printf("  LLC hit rate:       %.3f\n", r.LLCHitRate)
	fmt.Printf("  memory reads:       %d\n", r.MemReads)
	fmt.Printf("  memory writes:      %d\n", r.MemWrites)
	fmt.Printf("  upgraded accesses:  %.1f%%\n", r.UpgradedAccessFraction*100)
	fmt.Printf("  elapsed DRAM cycles: %d\n", r.ElapsedDRAMCycles)
}
