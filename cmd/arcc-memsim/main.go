// Command arcc-memsim runs one workload mix through the full-system
// simulator and reports IPC, DRAM power, and memory traffic for the chosen
// memory system and upgraded-page fraction, in any of the exhibit report
// formats.
//
// Usage:
//
//	arcc-memsim [-mix 1..12] [-system arcc|baseline] [-upgraded 0..1]
//	            [-instructions 1000000] [-seed 1] [-format text|json|csv]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"arcc/internal/exhibit"
	"arcc/internal/sim"
	"arcc/internal/workload"
)

// memsimData is the typed payload of the memsim report: the run
// configuration echo plus the simulator result.
type memsimData struct {
	Mix        string     `json:"mix"`
	System     string     `json:"system"`
	Upgraded   float64    `json:"upgraded_fraction"`
	Benchmarks [4]string  `json:"benchmarks"`
	Result     sim.Result `json:"result"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "arcc-memsim:", err)
		os.Exit(1)
	}
}

func run() error {
	mixIdx := flag.Int("mix", 1, "workload mix (1..12, Table 7.3)")
	system := flag.String("system", "arcc", "memory system: arcc or baseline")
	upgraded := flag.Float64("upgraded", 0, "fraction of pages in upgraded mode")
	instructions := flag.Int64("instructions", 1_000_000, "instructions per core")
	seed := flag.Int64("seed", 1, "random seed")
	format := flag.String("format", "text", "output format: text, json, or csv")
	dumpTrace := flag.String("dump-trace", "", "write core 0's access stream to this file and exit")
	traceAccesses := flag.Int("trace-accesses", 100_000, "accesses to record with -dump-trace")
	replayTrace := flag.String("trace", "", "replay this recorded trace on core 0 instead of its generator")
	flag.Parse()

	if *mixIdx < 1 || *mixIdx > 12 {
		return fmt.Errorf("mix must be 1..12")
	}
	var sys sim.MemorySystem
	switch *system {
	case "arcc":
		sys = sim.ARCC
	case "baseline":
		sys = sim.Baseline
	default:
		return fmt.Errorf("unknown system %q", *system)
	}
	renderer, err := exhibit.RendererFor(*format)
	if err != nil {
		return err
	}

	mix := workload.Mixes()[*mixIdx-1]
	if *dumpTrace != "" {
		f, err := os.Create(*dumpTrace)
		if err != nil {
			return err
		}
		stream := mix.Benchmarks[0].NewStream(*seed, 0)
		if _, err := workload.Record(f, stream, *traceAccesses); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d accesses of %s (core 0 of %s) to %s\n",
			*traceAccesses, mix.Benchmarks[0].Name, mix.Name, *dumpTrace)
		return nil
	}
	cfg := sim.DefaultConfig(mix, sys)
	cfg.UpgradedFraction = *upgraded
	cfg.InstructionsPerCore = *instructions
	cfg.Seed = *seed
	if *replayTrace != "" {
		f, err := os.Open(*replayTrace)
		if err != nil {
			return err
		}
		accesses, err := workload.ReadAll(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Sources[0] = workload.NewReplaySource(accesses)
		fmt.Fprintf(os.Stderr, "replaying %d recorded accesses on core 0\n", len(accesses))
	}
	r := sim.Run(cfg)

	return renderer.Render(os.Stdout, memsimReport(mix, sys, *upgraded, *instructions, *seed, r))
}

// memsimReport wraps one simulator run in an exhibit report so every
// renderer applies.
func memsimReport(mix workload.Mix, sys sim.MemorySystem, upgraded float64, instructions, seed int64, r sim.Result) *exhibit.Report {
	data := memsimData{Mix: mix.Name, System: sys.String(), Upgraded: upgraded, Result: r}
	for i, b := range mix.Benchmarks {
		data.Benchmarks[i] = b.Name
	}
	table := exhibit.Table{Name: "run",
		Columns: []string{"mix", "system", "upgraded_fraction", "ipc_sum", "power_mw",
			"llc_hit_rate", "mem_reads", "mem_writes", "upgraded_access_fraction", "elapsed_dram_cycles"},
		Rows: [][]string{exhibit.Row(mix.Name, sys.String(), exhibit.Ftoa(upgraded),
			exhibit.Ftoa(r.IPCSum), exhibit.Ftoa(r.PowerMW), exhibit.Ftoa(r.LLCHitRate),
			fmt.Sprint(r.MemReads), fmt.Sprint(r.MemWrites),
			exhibit.Ftoa(r.UpgradedAccessFraction), fmt.Sprint(r.ElapsedDRAMCycles))}}
	return &exhibit.Report{
		Exhibit: "memsim",
		Title:   fmt.Sprintf("Simulator run: %s on %s", mix.Name, sys),
		Meta:    exhibit.Meta{Seed: seed},
		Data:    data,
		Tables:  []exhibit.Table{table},
		Text: func(w io.Writer) {
			fmt.Fprintf(w, "%s on %s (upgraded fraction %.4f, %d instructions/core)\n", mix.Name, sys, upgraded, instructions)
			for i, b := range mix.Benchmarks {
				fmt.Fprintf(w, "  core %d: %-12s IPC %.3f\n", i, b.Name, r.PerCoreIPC[i])
			}
			fmt.Fprintf(w, "  IPC (sum):          %.3f\n", r.IPCSum)
			fmt.Fprintf(w, "  DRAM power:         %.1f mW\n", r.PowerMW)
			fmt.Fprintf(w, "  LLC hit rate:       %.3f\n", r.LLCHitRate)
			fmt.Fprintf(w, "  memory reads:       %d\n", r.MemReads)
			fmt.Fprintf(w, "  memory writes:      %d\n", r.MemWrites)
			fmt.Fprintf(w, "  upgraded accesses:  %.1f%%\n", r.UpgradedAccessFraction*100)
			fmt.Fprintf(w, "  elapsed DRAM cycles: %d\n", r.ElapsedDRAMCycles)
		},
	}
}
