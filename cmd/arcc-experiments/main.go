// Command arcc-experiments regenerates the tables and figures of the ARCC
// paper's evaluation.
//
// Usage:
//
//	arcc-experiments [-exhibit all|t7.1|t7.2|t7.3|t7.4|f3.1|f6.1|f7.1|f7.2|f7.3|f7.4|f7.5|f7.6]
//	                 [-quick] [-seed N] [-parallel N] [-trials N] [-progress]
//
// Without flags it reproduces everything at paper scale (10 000 Monte Carlo
// channels, 1 M instructions per core), which takes a few minutes; -quick
// cuts the volume for a fast look. The Monte Carlo sweeps and per-mix
// simulator runs fan out across the sharded engine (internal/mc):
// -parallel sets the worker count (0 = all CPUs, 1 = serial) without
// changing any number — output is bit-identical at any parallelism for a
// given seed. -trials overrides the Monte Carlo channel count, and
// -progress reports completion counts on stderr as each exhibit computes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arcc/internal/experiments"
	"arcc/internal/mc"
)

func main() {
	exhibit := flag.String("exhibit", "all", "which exhibit to regenerate (all, t7.1..t7.4, f3.1, f6.1, f7.1..f7.6, due, ablations)")
	quick := flag.Bool("quick", false, "reduced simulation volume")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "Monte Carlo / simulation workers (0 = all CPUs, 1 = serial)")
	trials := flag.Int("trials", 0, "override the Monte Carlo channel count (0 = profile default)")
	progress := flag.Bool("progress", false, "report per-exhibit progress on stderr")
	flag.Parse()

	w := os.Stdout
	// opts builds per-exhibit options so each exhibit gets its own
	// progress line state.
	opts := func(key string) experiments.Options {
		o := experiments.Options{Quick: *quick, Seed: *seed, Parallel: *parallel, Trials: *trials}
		if *progress {
			// One exhibit runs several engine jobs back to back (per rate
			// factor, per sweep); the printer resets itself at each job.
			o.Progress = mc.NewProgressPrinter(os.Stderr, key)
		}
		return o
	}

	type runner struct {
		key string
		run func()
	}
	all := []runner{
		{"t7.1", func() { experiments.FprintTable71(w) }},
		{"t7.2", func() { experiments.FprintTable72(w) }},
		{"t7.3", func() { experiments.FprintTable73(w) }},
		{"t7.4", func() { experiments.FprintTable74(w) }},
		{"f3.1", func() { experiments.Fig31(opts("f3.1")).Fprint(w) }},
		{"f6.1", func() { experiments.Fig61(opts("f6.1")).Fprint(w) }},
		{"f7.1", func() { experiments.Fig71(opts("f7.1")).Fprint(w) }},
		{"f7.2", func() { experiments.Fig72(opts("f7.2")).Fprint(w) }},
		{"f7.3", func() { experiments.Fig73(opts("f7.3")).Fprint(w) }},
		{"f7.4", func() { experiments.Fig74(opts("f7.4")).Fprint(w) }},
		{"f7.5", func() { experiments.Fig75(opts("f7.5")).Fprint(w) }},
		{"f7.6", func() { experiments.Fig76(opts("f7.6")).Fprint(w) }},
		{"due", func() { experiments.DUEAnalysis().Fprint(w) }},
		{"ablations", func() {
			experiments.FprintAblationScrub(w)
			fmt.Fprintln(w)
			experiments.AblationLLCPolicy(opts("ablation-llc")).Fprint(w)
			fmt.Fprintln(w)
			experiments.AblationPairing(opts("ablation-pairing")).Fprint(w)
		}},
	}

	want := strings.ToLower(*exhibit)
	ran := false
	for _, r := range all {
		if want == "all" || want == r.key {
			r.run()
			fmt.Fprintln(w)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *exhibit)
		os.Exit(2)
	}
}
