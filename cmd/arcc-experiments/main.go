// Command arcc-experiments regenerates the tables and figures of the ARCC
// paper's evaluation.
//
// Usage:
//
//	arcc-experiments [-exhibit all|t7.1|t7.2|t7.3|t7.4|f3.1|f6.1|f7.1|f7.2|f7.3|f7.4|f7.5|f7.6]
//	                 [-quick] [-seed N]
//
// Without flags it reproduces everything at paper scale (10 000 Monte Carlo
// channels, 1 M instructions per core), which takes a few minutes; -quick
// cuts the volume for a fast look.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"arcc/internal/experiments"
)

func main() {
	exhibit := flag.String("exhibit", "all", "which exhibit to regenerate (all, t7.1..t7.4, f3.1, f6.1, f7.1..f7.6, due, ablations)")
	quick := flag.Bool("quick", false, "reduced simulation volume")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Seed: *seed}
	w := os.Stdout

	type runner struct {
		key string
		run func()
	}
	all := []runner{
		{"t7.1", func() { experiments.FprintTable71(w) }},
		{"t7.2", func() { experiments.FprintTable72(w) }},
		{"t7.3", func() { experiments.FprintTable73(w) }},
		{"t7.4", func() { experiments.FprintTable74(w) }},
		{"f3.1", func() { experiments.Fig31(o).Fprint(w) }},
		{"f6.1", func() { experiments.Fig61(o).Fprint(w) }},
		{"f7.1", func() { experiments.Fig71(o).Fprint(w) }},
		{"f7.2", func() { experiments.Fig72(o).Fprint(w) }},
		{"f7.3", func() { experiments.Fig73(o).Fprint(w) }},
		{"f7.4", func() { experiments.Fig74(o).Fprint(w) }},
		{"f7.5", func() { experiments.Fig75(o).Fprint(w) }},
		{"f7.6", func() { experiments.Fig76(o).Fprint(w) }},
		{"due", func() { experiments.DUEAnalysis().Fprint(w) }},
		{"ablations", func() {
			experiments.FprintAblationScrub(w)
			fmt.Fprintln(w)
			experiments.AblationLLCPolicy(o).Fprint(w)
			fmt.Fprintln(w)
			experiments.AblationPairing(o).Fprint(w)
		}},
	}

	want := strings.ToLower(*exhibit)
	ran := false
	for _, r := range all {
		if want == "all" || want == r.key {
			r.run()
			fmt.Fprintln(w)
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown exhibit %q\n", *exhibit)
		os.Exit(2)
	}
}
