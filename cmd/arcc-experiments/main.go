// Command arcc-experiments regenerates the tables and figures of the ARCC
// paper's evaluation through the unified exhibit API, and runs
// user-defined declarative scenarios.
//
// Usage:
//
//	arcc-experiments [-list] [-exhibit all|name[,name...]] [-format text|json|csv]
//	                 [-scenario file.json] [-trace file.trc] [-quick] [-seed N]
//	                 [-parallel N] [-trials N] [-accel none|conditional|tilt:F]
//	                 [-ci] [-progress] [-timeout dur]
//
// Without flags it reproduces everything at paper scale (10 000 Monte Carlo
// channels, 1 M instructions per core), which takes a few minutes; -quick
// cuts the volume for a fast look. -list names every registered exhibit;
// -exhibit takes one or more names (comma-separated; "ablations" expands
// to the three ablation exhibits), and an unknown name is a usage error
// that lists what is registered. -format selects the renderer: text (the
// paper's layout, byte-identical to the golden files), json (structured
// reports with typed rows; several exhibits form a JSON array), or csv.
// -scenario runs a declarative sweep loaded from a JSON file (see the
// exhibit.Scenario schema) instead of the registered exhibits; -trace
// overrides the scenario's trace field, replaying the named trace file on
// all four simulated cores as an extra "trace" row of the simulator sweep.
//
// The Monte Carlo sweeps and per-mix simulator runs fan out across the
// sharded engine (internal/mc): -parallel sets the worker count (0 = all
// CPUs, 1 = serial) without changing any number — output is bit-identical
// at any parallelism for a given seed. -trials overrides the Monte Carlo
// channel count, and -progress reports completion counts on stderr as
// each exhibit computes. Interrupting the run (Ctrl-C, SIGTERM) or hitting
// -timeout cancels the context; the engine stops within one shard.
//
// For scenario runs, -accel selects rare-event acceleration of the
// lifetime Monte Carlos ("conditional" requires at least one fault per
// trial, "tilt:F" scales the fault rates by F; both weight trials by
// their exact likelihood ratio, so estimates stay unbiased and reach a
// target confidence interval with far fewer trials at rare fault rates)
// and -ci reports 95% confidence intervals and effective sample sizes
// alongside the means.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"arcc/internal/exhibit"
	"arcc/internal/experiments"
	"arcc/internal/mc"
	"arcc/internal/reliability"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "arcc-experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	list := flag.Bool("list", false, "list registered exhibits and exit")
	name := flag.String("exhibit", "all", "which exhibit(s) to regenerate: all, or comma-separated names (see -list)")
	format := flag.String("format", "text", "output format: text, json, or csv")
	scenario := flag.String("scenario", "", "run a declarative scenario from this JSON file instead of registered exhibits")
	trace := flag.String("trace", "", "with -scenario: replay this trace file (workload trace format) in the scenario's simulator sweep, overriding its trace field")
	quick := flag.Bool("quick", false, "reduced simulation volume")
	seed := flag.Int64("seed", 1, "random seed")
	parallel := flag.Int("parallel", 0, "Monte Carlo / simulation workers (0 = all CPUs, 1 = serial)")
	trials := flag.Int("trials", 0, "override the Monte Carlo channel count (0 = profile default)")
	accel := flag.String("accel", "", "scenario rare-event acceleration: none, conditional, or tilt:<factor>")
	ci := flag.Bool("ci", false, "report 95% confidence intervals and effective sample size for scenario runs")
	progress := flag.Bool("progress", false, "report per-exhibit progress on stderr")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	flag.Parse()

	if *list {
		for _, e := range exhibit.All() {
			fmt.Printf("%-18s %s\n", e.Name, e.Describe)
		}
		return nil
	}

	renderer, err := exhibit.RendererFor(*format)
	if err != nil {
		return err
	}
	if _, err := reliability.ParseAccel(*accel); err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// cfg builds per-exhibit options so each exhibit gets its own progress
	// line state: one exhibit runs several engine jobs back to back (per
	// rate factor, per sweep) and the printer resets itself at each job.
	cfg := func(key string) exhibit.Config {
		opts := []exhibit.Option{
			exhibit.WithQuick(*quick),
			exhibit.WithSeed(*seed),
			exhibit.WithParallel(*parallel),
			exhibit.WithTrials(*trials),
			exhibit.WithAccel(*accel),
			exhibit.WithCI(*ci),
		}
		if *progress {
			opts = append(opts, exhibit.WithProgress(
				exhibit.ProgressFunc(mc.NewProgressPrinter(os.Stderr, key))))
		}
		return exhibit.NewConfig(opts...)
	}

	var exhibits []exhibit.Exhibit
	if *scenario != "" {
		sc, err := exhibit.LoadScenario(*scenario)
		if err != nil {
			return err
		}
		if *trace != "" {
			sc.Trace = *trace
		}
		ex, err := experiments.NewScenarioExhibit(sc)
		if err != nil {
			return err
		}
		exhibits = []exhibit.Exhibit{ex}
	} else {
		if *trace != "" {
			return fmt.Errorf("-trace requires -scenario (the trace drives the scenario's simulator sweep)")
		}
		exhibits, err = selectExhibits(*name)
		if err != nil {
			return err
		}
	}

	// Reports stream as each exhibit completes — a multi-minute `-exhibit
	// all` run shows results incrementally, and an error (or Ctrl-C)
	// mid-run keeps everything already computed. Text keeps the
	// historical layout (one blank line after every exhibit), csv
	// separates reports with a blank line, and several json reports form
	// an array that is closed even on an early exit so the partial
	// output stays parseable.
	out := os.Stdout
	jsonArray := *format == "json" && len(exhibits) != 1
	if jsonArray {
		fmt.Fprintln(out, "[")
	}
	closeArray := func() {
		if jsonArray {
			fmt.Fprintln(out, "]")
		}
	}
	for i, e := range exhibits {
		r, err := e.Run(ctx, cfg(e.Name))
		if err != nil {
			closeArray()
			return fmt.Errorf("exhibit %s: %w", e.Name, err)
		}
		if i > 0 {
			switch *format {
			case "json":
				fmt.Fprintln(out, ",")
			case "csv":
				fmt.Fprintln(out)
			}
		}
		if err := renderer.Render(out, r); err != nil {
			closeArray()
			return err
		}
		if *format == "text" {
			fmt.Fprintln(out)
		}
	}
	closeArray()
	return nil
}

// selectExhibits resolves the -exhibit flag: "all", a single name, or a
// comma-separated list, with "ablations" kept as an alias for the three
// ablation exhibits. An unknown name is a usage error listing the
// registry, so typos cannot fall through silently.
func selectExhibits(arg string) ([]exhibit.Exhibit, error) {
	want := strings.ToLower(strings.TrimSpace(arg))
	if want == "all" {
		return exhibit.All(), nil
	}
	var out []exhibit.Exhibit
	for _, name := range strings.Split(want, ",") {
		name = strings.TrimSpace(name)
		if name == "ablations" {
			for _, alias := range []string{"ablation-scrub", "ablation-llc", "ablation-pairing"} {
				e, _ := exhibit.Lookup(alias)
				out = append(out, e)
			}
			continue
		}
		e, ok := exhibit.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("unknown exhibit %q; registered exhibits:\n  %s",
				name, strings.Join(exhibit.Names(), "\n  "))
		}
		out = append(out, e)
	}
	return out, nil
}
