package arcc_test

import (
	"math/rand"
	"testing"

	"arcc/internal/cache"
	"arcc/internal/core"
	"arcc/internal/ecc"
	"arcc/internal/memctrl"
	"arcc/internal/rs"
	"arcc/internal/scrub"
)

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// 4-step vs conventional scrubber, shared-recency vs independent LLC
// replacement, and raw codec throughput for the relaxed vs upgraded
// codeword geometries.

func BenchmarkAblationScrubFourStep(b *testing.B) {
	benchScrub(b, scrub.FourStep)
}

func BenchmarkAblationScrubConventional(b *testing.B) {
	benchScrub(b, scrub.Conventional)
}

func benchScrub(b *testing.B, algo scrub.Algorithm) {
	mem := core.New(core.Config{Pages: 16, RanksPerChannel: 2, BanksPerDevice: 8, RowsPerBank: 1})
	mem.RelaxAll()
	s := scrub.New(mem, algo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.FullScrub()
	}
}

func BenchmarkAblationLLCSharedRecency(b *testing.B) {
	benchLLC(b, cache.SharedRecency)
}

func BenchmarkAblationLLCIndependentLRU(b *testing.B) {
	benchLLC(b, cache.IndependentLRU)
}

func benchLLC(b *testing.B, policy cache.Policy) {
	c := cache.New(1<<20, 16, policy)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		if i > 0 && rng.Float64() < 0.7 {
			addrs[i] = addrs[i-1] + 1
		} else {
			addrs[i] = uint64(rng.Intn(1 << 22))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if !c.Access(a, false) {
			c.Insert(a, i%3 == 0, false)
		}
	}
}

func BenchmarkRelaxedEncode(b *testing.B) {
	benchEncode(b, ecc.NewRelaxed())
}

func BenchmarkUpgradedEncode(b *testing.B) {
	benchEncode(b, ecc.NewSCCDCD())
}

func benchEncode(b *testing.B, s ecc.Scheme) {
	data := make([]byte, s.DataSymbols())
	rand.New(rand.NewSource(1)).Read(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Encode(data)
	}
}

func BenchmarkRelaxedDecodeClean(b *testing.B) {
	benchDecode(b, ecc.NewRelaxed(), false)
}

func BenchmarkRelaxedDecodeOneError(b *testing.B) {
	benchDecode(b, ecc.NewRelaxed(), true)
}

func BenchmarkUpgradedDecodeClean(b *testing.B) {
	benchDecode(b, ecc.NewSCCDCD(), false)
}

func BenchmarkUpgradedDecodeOneError(b *testing.B) {
	benchDecode(b, ecc.NewSCCDCD(), true)
}

func benchDecode(b *testing.B, s ecc.Scheme, inject bool) {
	data := make([]byte, s.DataSymbols())
	rand.New(rand.NewSource(1)).Read(data)
	cw := s.Encode(data)
	if inject {
		cw[3] ^= 0x5A
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkErasureDecode(b *testing.B) {
	code := rs.New(36, 32)
	data := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(data)
	cw := code.Encode(data)
	bad := make([]byte, len(cw))
	copy(bad, cw)
	bad[7] ^= 0xFF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.DecodeErasures(bad, []int{7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPageUpgrade(b *testing.B) {
	mem := core.New(core.Config{Pages: 4, RanksPerChannel: 1, BanksPerDevice: 2, RowsPerBank: 1})
	mem.RelaxAll()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mem.UpgradePage(0); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := mem.RelaxPage(0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkAblationSectoredCache(b *testing.B) {
	c := cache.NewSectored(1<<20, 8)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		if i > 0 && rng.Float64() < 0.7 {
			addrs[i] = addrs[i-1] + 1
		} else {
			addrs[i] = uint64(rng.Intn(1 << 22))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := addrs[i%len(addrs)]
		if !c.Access(a, false) {
			c.Insert(a, i%3 == 0, false)
		}
	}
}

func BenchmarkAblationPairingPromote(b *testing.B) {
	benchPairing(b, memctrl.PairPromote)
}

func BenchmarkAblationPairingFIFO(b *testing.B) {
	benchPairing(b, memctrl.PairFIFO)
}

func benchPairing(b *testing.B, p memctrl.Pairing) {
	cfg := memctrl.Config{
		Channels: 2, RanksPerChannel: 2, BanksPerRank: 8,
		Timing: memctrl.DDR2X8Timing(), DevicesPerAccess: 18, BurstBeats: 4,
		Pairing: p,
	}
	c := memctrl.New(cfg, nil)
	var now int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Mixed stream: some single-channel noise plus paired accesses.
		c.Access(now, i%2, i%16, false)
		done := c.AccessPaired(now, (i+5)%16, false)
		now = done - 10
		if now < 0 {
			now = 0
		}
	}
	b.ReportMetric(float64(c.LastCompletion())/float64(b.N), "cycles/op")
}

func BenchmarkEightCheckDecodeTwoErrors(b *testing.B) {
	s := ecc.NewEightCheck()
	data := make([]byte, s.DataSymbols())
	rand.New(rand.NewSource(1)).Read(data)
	cw := s.Encode(data)
	cw[3] ^= 0x5A
	cw[40] ^= 0xC3
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Decode(cw); err != nil {
			b.Fatal(err)
		}
	}
}
