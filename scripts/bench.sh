#!/usr/bin/env bash
# bench.sh — run the repository's hot-path benchmark suite with -benchmem
# and emit the results in machine-readable form.
#
# Usage: scripts/bench.sh [output.json]
#
# Writes one JSON array with an object per benchmark — {name, iterations,
# ns_per_op, bytes_per_op, allocs_per_op} — plus the raw `go test -bench`
# text alongside it (same path, .txt). The output name comes from the
# first argument, then $BENCH_OUT, then BENCH_dev.json: the trajectory
# points checked in per PR are named BENCH_PR<N>.json (CI passes the PR
# number), and the default deliberately never collides with them so a
# bare local run cannot overwrite a recorded point. Compare two checkouts
# by diffing the JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-${BENCH_OUT:-BENCH_dev.json}}"
raw="${out%.json}.txt"
: >"$raw"

run() { go test -run=xxx -benchmem -count=1 "$@" | tee -a "$raw"; }

# GF/RS codec kernels and scratch decoding (PR 2's hot path), plus the
# word-parallel batch kernels (PR 8): the batch benchmarks report ns per
# CODEWORD, so BenchmarkDecodeBatchClean vs BenchmarkDecodeScratchClean is
# the batch speedup on the clean read that dominates every sweep.
run -bench='MulAddSlice|EncodeInto|EncodeBatch|Syndromes|ChienSearch|DecodeScratch|Decode2Err|DecodeBatch|CheckBatch|DecodeErasuresScratch' \
    ./internal/gf/ ./internal/rs/
# Fault-arrival sampling, including the conditional ("at least one
# fault") and rate-tilted importance samplers (PR 9).
run -bench='SampleArrivals' ./internal/faultmodel/
# Streaming estimators and the weighted MC path (PR 9): per-observation
# accumulator costs, the weighted engine overhead, and the conditional
# rare-event lifetime sweep end to end.
run -bench='WelfordAdd|WeightedAdd|QuantileSketch' ./internal/stats/
run -bench='RunWeighted' ./internal/mc/
run -bench='LifetimeOverheadStatsConditional' ./internal/reliability/
# The paged sparse memory core (PR 10): a terabyte-span line sweep over
# lazily materialised pages — ns/op and B/op gate the zero-alloc
# steady-state contract, and the bytes-resident/pages-resident metrics
# record the footprint-proportional residency — plus first-touch page
# materialisation cost.
run -bench='PagedMemTerabyteSweep|PagedMemMaterialise' ./internal/pagedmem/
# Scheme-level scratch decode paths (the functional data path's per-access
# work) and the full-system simulator steady state (PR 3's hot path).
run -bench='DecodeInto|DecodeLegacy' ./internal/ecc/
run -bench='SimRunSteadyState' ./internal/sim/
# End-to-end exhibit regenerators (quick profile). A handful of iterations
# rather than one, so the recorded ns/op is comparable across PRs instead
# of a single noisy wall-time sample.
run -bench='Fig71|Fig72|Fig73|Fig74' -benchtime=3x .

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2; ns = "null"; bytes = "null"; allocs = "null"; pages = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        if ($(i + 1) == "B/op") bytes = $i
        if ($(i + 1) == "allocs/op") allocs = $i
        if ($(i + 1) == "pages-resident") pages = $i
    }
    if (!first) printf(",\n")
    first = 0
    printf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
           name, iters, ns, bytes, allocs)
    if (pages != "") printf(", \"pages_resident\": %s", pages)
    printf("}")
}
END { print "\n]" }
' "$raw" >"$out"

echo "wrote $out and $raw"
