#!/usr/bin/env bash
# server-smoke.sh — end-to-end smoke test of the arcc-server sweep service.
#
# Builds cmd/arcc-server, starts it on a local port, submits the
# checked-in example scenario (examples/custom-scenario/scenario.json) as
# a quick-mode job over HTTP, polls the job until its result endpoint
# returns 200, and sanity-checks the JSON report. Exits nonzero on any
# failure; CI runs it after the unit tests so the served path — submit,
# status, result — stays demonstrably alive.
#
# Unless ARCC_SMOKE_NO_CRASH=1, it finishes by running the kill -9
# crash-recovery leg (scripts/crash-recovery.sh), which proves a sweep
# interrupted by SIGKILL resumes to a byte-identical report. CI runs that
# leg as its own step instead, for a separately visible result.
#
# Usage: scripts/server-smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-8841}"
base="http://127.0.0.1:${port}/v1"
bin="$(mktemp -d)/arcc-server"

go build -o "$bin" ./cmd/arcc-server
"$bin" -addr "127.0.0.1:${port}" -workers 2 &
server_pid=$!
trap 'kill "$server_pid" 2>/dev/null || true' EXIT

# Wait for the server to come up, failing fast if the process died (a
# port clash or a bad flag would otherwise burn the whole poll budget).
healthy=0
for _ in $(seq 1 100); do
    if curl -fsS "$base/healthz" >/dev/null 2>&1; then healthy=1; break; fi
    kill -0 "$server_pid" 2>/dev/null || { echo "server process exited during startup"; exit 1; }
    sleep 0.1
done
[ "$healthy" = 1 ] || { echo "server never became healthy"; exit 1; }

# The registry listing must expose the paper's exhibits.
curl -fsS "$base/exhibits" | grep -q '"f3.1"' || { echo "registry listing missing f3.1"; exit 1; }

# Submit the example scenario in quick mode. The scenario file is a JSON
# object, so it embeds verbatim into the job request.
payload=$(printf '{"scenario": %s, "quick": true, "trials": 200, "format": "json"}' \
    "$(cat examples/custom-scenario/scenario.json)")
submit=$(curl -fsS -X POST -d "$payload" "$base/jobs")
id=$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in submit response: $submit"; exit 1; }
echo "submitted job $id"

# Poll the result until the job completes (202 while queued/running).
result="$(mktemp)"
code=""
for _ in $(seq 1 300); do
    code=$(curl -sS -o "$result" -w '%{http_code}' "$base/jobs/$id/result")
    case "$code" in
        200) break ;;
        202) sleep 0.5 ;;
        *) echo "job $id failed with HTTP $code:"; cat "$result"; exit 1 ;;
    esac
done
[ "$code" = 200 ] || { echo "job $id never completed (last HTTP $code)"; exit 1; }

# The report must be the scenario's structured JSON.
grep -q '"exhibit": "dense-server"' "$result" || { echo "unexpected report:"; head "$result"; exit 1; }

# An identical resubmission must be served from the result cache.
resubmit=$(curl -fsS -X POST -d "$payload" "$base/jobs")
printf '%s' "$resubmit" | grep -q '"cached": true' || { echo "duplicate job not cached: $resubmit"; exit 1; }

# A bad request must be a 400, not a dead server.
bad=$(curl -sS -o /dev/null -w '%{http_code}' -X POST -d '{"exhibit": "nope"}' "$base/jobs")
[ "$bad" = 400 ] || { echo "invalid job returned HTTP $bad, want 400"; exit 1; }
curl -fsS "$base/healthz" >/dev/null || { echo "server died after bad request"; exit 1; }

echo "server smoke OK"

# Crash-recovery leg: kill -9 mid-sweep, restart, byte-compare the resumed
# report. Skipped when the caller runs it separately (CI does).
if [ "${ARCC_SMOKE_NO_CRASH:-0}" != 1 ]; then
    kill "$server_pid" 2>/dev/null || true
    scripts/crash-recovery.sh "$((port + 1))"
fi
