#!/usr/bin/env bash
# crash-recovery.sh — kill -9 the sweep service mid-run and prove the
# resumed report is byte-identical to an uninterrupted run.
#
# Builds cmd/arcc-server and cmd/arcc-experiments, starts the server with
# a -state-dir and an aggressive checkpoint cadence, submits a serial
# multi-million-trial scenario sweep, waits for the first checkpoint file
# to land, and SIGKILLs the process — no drain, no flush, the real crash.
# A second server on the same state dir must replay the journal, re-enqueue
# the interrupted job from its checkpoint, and finish it; the fetched
# report is then compared byte for byte against what the arcc-experiments
# CLI produces for the same scenario with no server and no crash. Any
# divergence — a lost shard, a double-merged accumulator, a reordered
# merge — fails the diff.
#
# Usage: scripts/crash-recovery.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-8842}"
base="http://127.0.0.1:${port}/v1"
work="$(mktemp -d)"
state="$work/state"
server_pid=""
trap '[ -n "$server_pid" ] && kill -9 "$server_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/arcc-server" ./cmd/arcc-server
go build -o "$work/arcc-experiments" ./cmd/arcc-experiments

cat > "$work/scenario.json" <<'EOF'
{"name": "crash-recovery", "trials": 2000000}
EOF

wait_healthy() {
    for _ in $(seq 1 100); do
        if curl -fsS "$base/healthz" >/dev/null 2>&1; then return 0; fi
        kill -0 "$server_pid" 2>/dev/null || { echo "server process died during startup"; return 1; }
        sleep 0.1
    done
    echo "server never became healthy"
    return 1
}

start_server() {
    "$work/arcc-server" -addr "127.0.0.1:${port}" -workers 1 \
        -state-dir "$state" -checkpoint-shards 200 -checkpoint-seconds 1 &
    server_pid=$!
    wait_healthy
}

echo "== first server: submit, checkpoint, kill -9 =="
start_server

payload=$(printf '{"scenario": %s, "seed": 9, "parallel": 1, "format": "json"}' \
    "$(cat "$work/scenario.json")")
submit=$(curl -fsS -X POST -d "$payload" "$base/jobs")
id=$(printf '%s' "$submit" | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$id" ] || { echo "no job id in submit response: $submit"; exit 1; }
echo "submitted $id"

# Kill the instant the first checkpoint file lands on disk: the job is
# provably mid-run with completed shards persisted.
for _ in $(seq 1 200); do
    [ -s "$state/checkpoints/$id.json" ] && break
    kill -0 "$server_pid" 2>/dev/null || { echo "server died before checkpointing"; exit 1; }
    sleep 0.05
done
[ -s "$state/checkpoints/$id.json" ] || { echo "no checkpoint ever appeared"; exit 1; }
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "killed mid-sweep with $(wc -c < "$state/checkpoints/$id.json") bytes of checkpoint"

echo "== second server: recover, resume, compare =="
start_server

status=$(curl -fsS "$base/jobs/$id")
printf '%s' "$status" | grep -q '"recovered": true' || { echo "job not recovered: $status"; exit 1; }

result="$work/resumed.json"
code=""
for _ in $(seq 1 600); do
    code=$(curl -sS -o "$result" -w '%{http_code}' "$base/jobs/$id/result")
    case "$code" in
        200) break ;;
        202) sleep 0.2 ;;
        *) echo "resumed job failed with HTTP $code:"; cat "$result"; exit 1 ;;
    esac
done
[ "$code" = 200 ] || { echo "resumed job never completed (last HTTP $code)"; exit 1; }

"$work/arcc-experiments" -scenario "$work/scenario.json" -format json \
    -seed 9 -parallel 1 > "$work/uninterrupted.json"

if ! diff -u "$work/uninterrupted.json" "$result"; then
    echo "FAIL: resumed report differs from an uninterrupted run"
    exit 1
fi
kill "$server_pid" 2>/dev/null || true
server_pid=""
echo "crash recovery OK: resumed report is byte-identical"
